"""Chaos benchmark: resilient execution under injected faults.

Runs the engine's fault sites (see :mod:`repro.db.faults`) through
seven failure scenarios — including 10% disk block-read faults against
a persistent database (``io.block_read``) — and gates on the
robustness contract:

* **100% completion** — every query under fault injection completes
  (through retries and fallbacks), none errors out;
* **bit-exact results** — every faulted run returns exactly the
  fault-free run's values (``np.array_equal``, not allclose): retries
  re-process requeued morsels exactly once, and the GPU-to-host
  fallback computes with the same NumPy kernels;
* **bounded latency** — the faulted p95 stays within
  ``LATENCY_FACTOR * clean p95 + LATENCY_SLACK_SECONDS``;
* **observability** — the aggregated metrics registry shows
  ``query.retries``, ``fallback.engaged`` and ``cache.corruption``,
  and the exported Chrome trace contains ``retry`` and ``fallback``
  marker spans;
* **zero disabled overhead** — with no injector installed every fault
  site is one falsy check; an interleaved best-of-N comparison against
  an installed-but-unarmed injector must stay within the PR 2 tracing
  overhead threshold (5%).

``python -m repro.bench chaos --smoke --seed 7 --json BENCH_pr3.json``
is the CI smoke entry point; the full preset sizes everything up.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig
from repro.bench.tracing_bench import OVERHEAD_THRESHOLD, write_report
from repro.core.attach import connect
from repro.core.client.external import ExternalInference
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.db import faults
from repro.db.faults import FaultInjector
from repro.db.tracing import MetricsRegistry, Tracer, flatten_metrics
from repro.device.gpu import SimulatedGpu
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

#: faulted p95 must stay under FACTOR * clean p95 + SLACK
LATENCY_FACTOR = 10.0
LATENCY_SLACK_SECONDS = 1.0

#: per-dispatch crash probability of the sustained-fault scenario
TASK_FAULT_PROBABILITY = 0.12

#: per-block-read failure probability of the disk-fault scenario
DISK_FAULT_PROBABILITY = 0.10

SQL = "SELECT sepal_length + sepal_width AS s FROM iris"

__all__ = [
    "run_chaos_bench",
    "format_chaos_report",
    "write_report",
]


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))]


def _latency_ok(clean_p95: float, faulted_p95: float) -> bool:
    return faulted_p95 <= LATENCY_FACTOR * clean_p95 + LATENCY_SLACK_SECONDS


def _scenario_result(
    name: str,
    queries: int,
    completed: int,
    bit_exact: bool,
    clean_p95: float,
    faulted_p95: float,
    injector: FaultInjector,
    extra: dict | None = None,
) -> dict:
    result = {
        "name": name,
        "queries": queries,
        "completed": completed,
        "bit_exact": bit_exact,
        "clean_p95_seconds": clean_p95,
        "faulted_p95_seconds": faulted_p95,
        "latency_ok": _latency_ok(clean_p95, faulted_p95),
        "faults": injector.statistics(),
        "faults_injected": injector.total_faults(),
        "ok": completed == queries
        and bit_exact
        and _latency_ok(clean_p95, faulted_p95),
    }
    if extra:
        result.update(extra)
    return result


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _sql_scenario(
    name: str,
    arm,
    queries: int,
    rows: int,
    parallelism: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> dict:
    """N parallel SQL queries with *arm(injector)* policies installed."""
    db = connect(
        parallelism=parallelism,
        tracer=tracer,
        metrics=metrics,
        task_retries=8,
    )
    try:
        load_iris_table(db, rows, num_partitions=parallelism)
        reference = np.sort(db.execute(SQL).column("s"))
        clean: list[float] = []
        for _ in range(queries):
            started = time.perf_counter()
            db.execute(SQL, parallel=True)
            clean.append(time.perf_counter() - started)
        injector = FaultInjector(seed=seed)
        arm(injector)
        completed = 0
        bit_exact = True
        faulted: list[float] = []
        with faults.active(injector):
            for _ in range(queries):
                started = time.perf_counter()
                result = db.execute(SQL, parallel=True)
                faulted.append(time.perf_counter() - started)
                completed += 1
                if not np.array_equal(
                    np.sort(result.column("s")), reference
                ):
                    bit_exact = False
        return _scenario_result(
            name,
            queries,
            completed,
            bit_exact,
            _p95(clean),
            _p95(faulted),
            injector,
        )
    finally:
        db.close()


def _modeljoin_scenario(
    name: str,
    arm,
    rows: int,
    width: int,
    depth: int,
    parallelism: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
    device_factory=None,
    clear_cache: bool = False,
) -> dict:
    """One ModelJoin run under faults, bit-exact vs the clean run."""
    db = connect(
        parallelism=parallelism,
        tracer=tracer,
        metrics=metrics,
        task_retries=8,
    )
    try:
        load_iris_table(db, rows, num_partitions=parallelism)
        model = make_dense_model(width, depth, input_width=4, seed=width)
        publish_model(
            db,
            "chaos_model",
            model,
            model_table_partitions=parallelism,
            replace=True,
        )
        parallel = parallelism > 1

        def run():
            device = device_factory() if device_factory else None
            runner = NativeModelJoin(db, "chaos_model", device=device)
            started = time.perf_counter()
            predictions = runner.predict(
                "iris", "id", list(FEATURE_COLUMNS), parallel=parallel
            )
            return predictions, time.perf_counter() - started

        reference, clean_seconds = run()
        if clear_cache:
            # A cache hit would skip the faulted build path entirely.
            db.model_cache.clear()
        injector = FaultInjector(seed=seed)
        arm(injector)
        with faults.active(injector):
            predictions, faulted_seconds = run()
        return _scenario_result(
            name,
            1,
            1,
            np.array_equal(predictions, reference),
            clean_seconds,
            faulted_seconds,
            injector,
        )
    finally:
        db.close()


def _transfer_scenario(
    rows: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> dict:
    """External baseline with a flaky ODBC link: retries must recover."""
    db = connect(tracer=tracer, metrics=metrics)
    try:
        load_iris_table(db, rows)
        model = make_dense_model(8, 2, input_width=4, seed=8)
        external = ExternalInference(db, model)
        started = time.perf_counter()
        reference = external.run(
            "iris", "id", list(FEATURE_COLUMNS)
        ).predictions
        clean_seconds = time.perf_counter() - started
        injector = FaultInjector(seed=seed)
        injector.raise_once("odbc.fetch", count=2)
        with faults.active(injector):
            started = time.perf_counter()
            report = external.run("iris", "id", list(FEATURE_COLUMNS))
            faulted_seconds = time.perf_counter() - started
        return _scenario_result(
            "transfer-fault",
            1,
            1,
            np.array_equal(report.predictions, reference),
            clean_seconds,
            faulted_seconds,
            injector,
            extra={
                "attempts": external.connection.last_stats.attempts,
                "retries": external.connection.last_stats.retries,
                "degraded": external.degraded,
            },
        )
    finally:
        db.close()


def _cache_scenario(
    rows: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> dict:
    """A corrupted cached model must be quarantined and rebuilt."""
    db = connect(tracer=tracer, metrics=metrics)
    try:
        load_iris_table(db, rows)
        model = make_dense_model(16, 2, input_width=4, seed=16)
        publish_model(db, "cache_model", model, replace=True)

        def run():
            runner = NativeModelJoin(db, "cache_model")
            started = time.perf_counter()
            predictions = runner.predict(
                "iris", "id", list(FEATURE_COLUMNS)
            )
            return predictions, time.perf_counter() - started

        reference, clean_seconds = run()  # populates the cache
        injector = FaultInjector(seed=seed)
        injector.corrupt_payload("cache.load", probability=1.0)
        with faults.active(injector):
            predictions, faulted_seconds = run()
        cache_stats = db.model_cache.statistics()
        return _scenario_result(
            "cache-corruption",
            1,
            1,
            np.array_equal(predictions, reference)
            and cache_stats["corruptions"] >= 1,
            clean_seconds,
            faulted_seconds,
            injector,
            extra={"cache": cache_stats},
        )
    finally:
        db.close()


def _disk_scenario(
    queries: int,
    rows: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> dict:
    """Disk block reads failing 10% of the time: reader-level retries
    must deliver every query bit-exact (see docs/STORAGE.md)."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-disk-"))
    sql = "SELECT id, f0 FROM fact"
    try:
        database = connect(
            path=str(workdir / "db"), tracer=tracer, metrics=metrics
        )
        database.execute(
            "CREATE TABLE fact (id BIGINT, f0 FLOAT) PARTITIONS 2"
        )
        rng = np.random.default_rng(seed)
        database.table("fact").append_columns(
            id=np.arange(rows, dtype=np.int64),
            f0=rng.random(rows, dtype=np.float32),
        )
        database.close()  # checkpoint to disk
        database = connect(
            path=str(workdir / "db"), tracer=tracer, metrics=metrics
        )
        pool = database.storage.buffer_pool

        def run():
            pool.clear()  # every query re-reads every block
            started = time.perf_counter()
            result = database.execute(sql)
            return result, time.perf_counter() - started

        reference, _ = run()
        ref_bytes = tuple(
            np.asarray(reference.column(name)).tobytes()
            for name in ("id", "f0")
        )
        clean = [run()[1] for _ in range(queries)]
        injector = FaultInjector(seed=seed)
        injector.raise_with_probability(
            "io.block_read", DISK_FAULT_PROBABILITY
        )
        completed = 0
        bit_exact = True
        faulted: list[float] = []
        with faults.active(injector):
            for _ in range(queries):
                result, seconds = run()
                faulted.append(seconds)
                completed += 1
                if (
                    tuple(
                        np.asarray(result.column(name)).tobytes()
                        for name in ("id", "f0")
                    )
                    != ref_bytes
                ):
                    bit_exact = False
        retries = database.metrics.counter("storage.read_retries").value
        database.close()
        return _scenario_result(
            "disk-read-fault",
            queries,
            completed,
            bit_exact,
            _p95(clean),
            _p95(faulted),
            injector,
            extra={"read_retries": retries},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# disabled-overhead gate
# ----------------------------------------------------------------------
def run_disabled_overhead_gate(
    rows: int = 10_000,
    width: int = 64,
    depth: int = 4,
    repeats: int = 5,
) -> dict:
    """Fault sites must be free when no faults are armed.

    Interleaved best-of-N of the dense ModelJoin with (a) no injector
    installed — every site is a single falsy check — and (b) an
    installed injector with *no armed policies* — sites reach the
    injector but find nothing to do.  Both must agree within the PR 2
    tracing-overhead threshold.

    A failing round is re-measured once with doubled repeats before the
    gate reports failure: on shared/noisy machines a single best-of-N
    round can still catch a scheduling hiccup, and a genuine per-site
    cost will fail both rounds.
    """
    result = _measure_disabled_overhead(rows, width, depth, repeats)
    result["rounds"] = 1
    if not result["ok"]:
        retry = _measure_disabled_overhead(rows, width, depth, repeats * 2)
        if retry["overhead_fraction"] < result["overhead_fraction"]:
            retry["rounds"] = 2
            result = retry
        else:
            result["rounds"] = 2
    return result


def _measure_disabled_overhead(
    rows: int, width: int, depth: int, repeats: int
) -> dict:
    db = connect()
    try:
        load_iris_table(db, rows)
        model = make_dense_model(width, depth, input_width=4, seed=width)
        publish_model(db, "overhead_model", model, replace=True)
        runner = NativeModelJoin(db, "overhead_model")

        def timed() -> float:
            started = time.perf_counter()
            runner.predict("iris", "id", list(FEATURE_COLUMNS))
            return time.perf_counter() - started

        timed()  # warm-up: model build cache
        timed()  # warm-up: steady-state allocator/buffer reuse
        disabled: list[float] = []
        armed_empty: list[float] = []
        for _ in range(repeats):
            faults.uninstall()
            disabled.append(timed())
            faults.install(FaultInjector())
            armed_empty.append(timed())
        faults.uninstall()
    finally:
        db.close()
    disabled_best = min(disabled)
    installed_best = min(armed_empty)
    overhead = (
        installed_best / disabled_best - 1.0 if disabled_best > 0 else 0.0
    )
    return {
        "workload": {
            "rows": rows,
            "width": width,
            "depth": depth,
            "repeats": repeats,
        },
        "disabled_seconds": disabled,
        "installed_unarmed_seconds": armed_empty,
        "disabled_best_seconds": disabled_best,
        "installed_best_seconds": installed_best,
        "overhead_fraction": overhead,
        "threshold": OVERHEAD_THRESHOLD,
        "ok": overhead <= OVERHEAD_THRESHOLD,
    }


def _check_trace(trace_path: str, tracer: Tracer) -> dict:
    events = tracer.export(trace_path)
    with open(trace_path) as handle:
        trace = json.load(handle)
    categories: dict[str, int] = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") == "X":
            category = event.get("cat", "")
            categories[category] = categories.get(category, 0) + 1
    has_retry = categories.get("retry", 0) > 0
    has_fallback = categories.get("fallback", 0) > 0
    return {
        "path": trace_path,
        "exported_events": events,
        "categories": categories,
        "has_retry_spans": has_retry,
        "has_fallback_spans": has_fallback,
        "ok": has_retry and has_fallback,
    }


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------
def run_chaos_bench(
    config: BenchConfig,
    seed: int = 7,
    trace_path: str = "results/chaos_trace.json",
) -> dict:
    """All fault scenarios, the overhead gate, and the evidence trace."""
    if config.preset == "smoke":
        sql_queries, sql_rows = 10, 1_500
        mj_rows, mj_width, mj_depth = 1_500, 8, 2
        disk_queries, disk_rows = 6, 20_000
        # The overhead comparison needs a workload long enough that
        # timer noise stays well under the 5% threshold, even in smoke.
        overhead_rows, overhead_width, overhead_depth, repeats = (
            6_000,
            64,
            4,
            5,
        )
    else:
        sql_queries, sql_rows = 40, 6_000
        mj_rows, mj_width, mj_depth = 6_000, 64, 4
        disk_queries, disk_rows = 12, 50_000
        overhead_rows, overhead_width, overhead_depth, repeats = (
            10_000,
            64,
            4,
            5,
        )
    parallelism = config.parallelism
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()

    scenarios = [
        _sql_scenario(
            "worker-crash",
            lambda injector: injector.raise_with_probability(
                "worker.task", TASK_FAULT_PROBABILITY
            ),
            sql_queries,
            sql_rows,
            parallelism,
            seed,
            tracer,
            metrics,
        ),
        _sql_scenario(
            "morsel-crash",
            lambda injector: injector.raise_once(
                "worker.morsel", count=2
            ),
            sql_queries,
            sql_rows,
            parallelism,
            seed,
            tracer,
            metrics,
        ),
        _modeljoin_scenario(
            "gpu-kernel-fault",
            lambda injector: injector.raise_once("device.gemm", count=1),
            mj_rows,
            mj_width,
            mj_depth,
            1,
            seed,
            tracer,
            metrics,
            device_factory=SimulatedGpu,
        ),
        _modeljoin_scenario(
            "build-fault",
            lambda injector: injector.raise_once(
                "modeljoin.build", count=1
            ),
            mj_rows,
            mj_width,
            mj_depth,
            parallelism,
            seed,
            tracer,
            metrics,
            clear_cache=True,
        ),
        _transfer_scenario(sql_rows, seed, tracer, metrics),
        _cache_scenario(sql_rows, seed, tracer, metrics),
        _disk_scenario(disk_queries, disk_rows, seed, tracer, metrics),
    ]

    trace = _check_trace(trace_path, tracer)
    overhead = run_disabled_overhead_gate(
        rows=overhead_rows,
        width=overhead_width,
        depth=overhead_depth,
        repeats=repeats,
    )
    metric_values = flatten_metrics(metrics.snapshot())
    metrics_visible = {
        "query.retries": metric_values.get("query.retries", 0),
        "worker.crashes": metric_values.get("worker.crashes", 0),
        "fallback.engaged": metric_values.get("fallback.engaged", 0),
        "cache.corruption": metric_values.get("cache.corruption", 0),
        "storage.read_retries": metric_values.get(
            "storage.read_retries", 0
        ),
    }
    metrics_ok = (
        metrics_visible["query.retries"] > 0
        and metrics_visible["fallback.engaged"] > 0
        and metrics_visible["cache.corruption"] > 0
        and metrics_visible["storage.read_retries"] > 0
    )
    total_queries = sum(s["queries"] for s in scenarios)
    total_completed = sum(s["completed"] for s in scenarios)
    report = {
        "experiment": "chaos",
        "preset": config.preset,
        "seed": seed,
        "scenarios": scenarios,
        "completion": {
            "queries": total_queries,
            "completed": total_completed,
            "rate": total_completed / total_queries,
        },
        "bit_exact": all(s["bit_exact"] for s in scenarios),
        "metrics_visible": metrics_visible,
        "metrics": metric_values,
        "trace": trace,
        "overhead": overhead,
        "ok": all(s["ok"] for s in scenarios)
        and total_completed == total_queries
        and metrics_ok
        and trace["ok"]
        and overhead["ok"],
    }
    return report


def format_chaos_report(report: dict) -> str:
    """Human-readable summary of :func:`run_chaos_bench`."""
    title = (
        f"Chaos — resilient execution under injected faults "
        f"(preset {report['preset']}, seed {report['seed']})"
    )
    lines = [title, "=" * len(title)]
    header = (
        f"{'scenario':<18} {'queries':>7} {'done':>5} {'bit-exact':>9} "
        f"{'clean p95':>10} {'faulted p95':>11} {'faults':>6} {'ok':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scenario in report["scenarios"]:
        lines.append(
            f"{scenario['name']:<18} {scenario['queries']:>7} "
            f"{scenario['completed']:>5} "
            f"{str(scenario['bit_exact']):>9} "
            f"{scenario['clean_p95_seconds'] * 1000:>8.1f}ms "
            f"{scenario['faulted_p95_seconds'] * 1000:>9.1f}ms "
            f"{scenario['faults_injected']:>6} "
            f"{'yes' if scenario['ok'] else 'NO':>4}"
        )
    completion = report["completion"]
    lines.append(
        f"\ncompletion: {completion['completed']}/{completion['queries']} "
        f"({completion['rate'] * 100:.0f}%)   "
        f"bit-exact: {report['bit_exact']}"
    )
    visible = report["metrics_visible"]
    lines.append(
        "metrics: "
        + "  ".join(f"{key}={value}" for key, value in visible.items())
    )
    trace = report["trace"]
    lines.append(
        f"trace: {trace['exported_events']} events in {trace['path']} "
        f"(retry spans: {trace['has_retry_spans']}, "
        f"fallback spans: {trace['has_fallback_spans']})"
    )
    overhead = report["overhead"]
    lines.append(
        f"disabled-faults overhead: "
        f"{overhead['overhead_fraction'] * 100:+.2f}% "
        f"(threshold {overhead['threshold'] * 100:.0f}%) "
        f"-> {'PASS' if overhead['ok'] else 'FAIL'}"
    )
    lines.append(f"\nVerdict: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
