"""Sharded-execution benchmark and gates (``python -m repro.bench shard``).

Measures the multiprocess shard fleet (docs/SHARDING.md) against
single-process execution on the same data:

- *scale*: a >=5M-tuple (preset ``default``) scan + GROUP BY on the
  partition key, and the same scan through a MODEL JOIN, timed
  single-process vs N shard processes.  Results must be bit-exact
  (both queries group by the partition key, so per-group fold order is
  preserved shard-side).
- *chaos*: SIGKILL one shard mid-query — the coordinator must surface
  a typed :class:`~repro.errors.ShardCrashError` (never hang) and
  ``close(drain_seconds=)`` must return within its bound.
- *observability*: ``system.shards`` must report one row per shard
  with non-zero per-shard scan counters.

The >=2.5x speedup gate is enforced only when the machine has at
least four usable cores: shard processes cannot run concurrently on
fewer, so the measurement is recorded but the verdict is skipped with
an explicit reason (single-core CI boxes would otherwise fail on
physics, not regressions).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.bench.harness import BenchConfig

SPEEDUP_THRESHOLD = 2.5
MIN_CORES_FOR_SPEEDUP_GATE = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _shard_params(config: BenchConfig) -> tuple[int, int]:
    """(rows, shards) for the preset."""
    if config.preset == "smoke":
        return 40_000, 2
    return 5_000_000, 4


def _load(db, rows: int, chunk: int = 500_000) -> None:
    from repro.db.vector import VectorBatch

    db.execute(
        "CREATE TABLE facts (k INTEGER, x1 FLOAT, x2 FLOAT, x3 FLOAT, "
        "x4 FLOAT, v DOUBLE) PARTITION BY (k)"
    )
    table = db.table("facts")
    rng = np.random.default_rng(7)
    loaded = 0
    while loaded < rows:
        n = min(chunk, rows - loaded)
        table.append_batch(
            VectorBatch.from_dict(
                table.schema,
                {
                    "k": rng.integers(0, 4096, n).astype(np.int64),
                    "x1": rng.random(n, dtype=np.float32),
                    "x2": rng.random(n, dtype=np.float32),
                    "x3": rng.random(n, dtype=np.float32),
                    "x4": rng.random(n, dtype=np.float32),
                    "v": rng.integers(-4000, 4000, n).astype(np.float64)
                    / 8.0,
                },
            )
        )
        loaded += n


def _publish(db) -> None:
    from repro.core.registry import publish_model
    from repro.nn.layers import Dense
    from repro.nn.model import Sequential

    publish_model(
        db,
        "scorer",
        Sequential(
            [Dense(8, "relu"), Dense(1, "sigmoid")],
            input_width=4,
            seed=11,
        ),
    )


SCALE_QUERIES = (
    (
        "scan_groupby",
        "SELECT k, SUM(v) AS s, COUNT(v) AS c FROM facts "
        "GROUP BY k ORDER BY k",
    ),
    (
        "scan_modeljoin",
        "SELECT k, SUM(prediction_0) AS p, COUNT(prediction_0) AS c "
        "FROM facts MODEL JOIN scorer USING (x1, x2, x3, x4) "
        "GROUP BY k ORDER BY k",
    ),
)


def _timed(db, sql: str) -> tuple[float, list]:
    started = time.perf_counter()
    result = db.execute(sql)
    return time.perf_counter() - started, result.rows


def _run_scale(config: BenchConfig, rows: int, shards: int) -> dict:
    import repro

    queries = []
    single = repro.connect()
    _load(single, rows)
    _publish(single)
    sharded = repro.connect(shards=shards)
    _load(sharded, rows)
    _publish(sharded)
    try:
        for name, sql in SCALE_QUERIES:
            single.execute(sql)  # warm both engines (model build, JIT)
            sharded.execute(sql)
            single_seconds, single_rows = _timed(single, sql)
            sharded_seconds, sharded_rows = _timed(sharded, sql)
            queries.append(
                {
                    "name": name,
                    "sql": sql,
                    "single_seconds": single_seconds,
                    "sharded_seconds": sharded_seconds,
                    "speedup": single_seconds / max(sharded_seconds, 1e-9),
                    "bit_exact": single_rows == sharded_rows,
                }
            )
        shard_rows = sharded.execute(
            "SELECT shard_id, alive, rows, rows_read FROM system.shards "
            "ORDER BY shard_id"
        ).rows
        observability = {
            "shard_rows": [
                {
                    "shard_id": int(row[0]),
                    "alive": bool(row[1]),
                    "rows": int(row[2]),
                    "rows_read": int(row[3]),
                }
                for row in shard_rows
            ],
            "ok": len(shard_rows) == shards
            and all(bool(row[1]) and int(row[3]) > 0 for row in shard_rows),
        }
    finally:
        single.close()
        sharded.close()
    return {"queries": queries, "observability": observability}


def _run_chaos() -> dict:
    import repro
    from repro.errors import ShardCrashError

    db = repro.connect(shards=2)
    _load(db, 100_000)
    outcome: dict = {"error": None, "mid_query": False}

    def run_query():
        try:
            db.execute(
                "SELECT k, SUM(v) AS s FROM facts GROUP BY k ORDER BY k"
            )
            db.execute("SELECT k, v FROM facts WHERE v > 100")
        except ShardCrashError as error:
            outcome["error"] = type(error).__name__
            outcome["mid_query"] = True
        except Exception as error:  # anything else fails the gate
            outcome["error"] = f"UNEXPECTED:{type(error).__name__}"

    thread = threading.Thread(target=run_query)
    started = time.perf_counter()
    thread.start()
    time.sleep(0.05)
    db.sharding.kill_shard(1)
    thread.join(timeout=30.0)
    hung = thread.is_alive()
    query_seconds = time.perf_counter() - started
    if outcome["error"] is None and not hung:
        # The in-flight queries beat the SIGKILL; the degraded
        # coordinator must still fail fast with the typed error.
        try:
            db.execute("SELECT k, v FROM facts WHERE v > 0")
        except ShardCrashError as error:
            outcome["error"] = type(error).__name__
        except Exception as error:
            outcome["error"] = f"UNEXPECTED:{type(error).__name__}"
    drain_started = time.perf_counter()
    db.close(drain_seconds=2.0)
    drain_seconds = time.perf_counter() - drain_started
    return {
        "typed_error": outcome["error"],
        "killed_mid_query": outcome["mid_query"],
        "query_seconds": query_seconds,
        "hung": hung,
        "drain_seconds": drain_seconds,
        "drain_bound_seconds": 8.0,
        "ok": (
            outcome["error"] == "ShardCrashError"
            and not hung
            and drain_seconds < 8.0
        ),
    }


def run_shard_bench(config: BenchConfig) -> dict:
    rows, shards = _shard_params(config)
    cores = _usable_cores()
    scale = _run_scale(config, rows, shards)
    chaos = _run_chaos()
    best_speedup = max(
        (query["speedup"] for query in scale["queries"]), default=0.0
    )
    speedup_enforced = cores >= MIN_CORES_FOR_SPEEDUP_GATE
    speedup_gate = {
        "threshold": SPEEDUP_THRESHOLD,
        "value": best_speedup,
        "enforced": speedup_enforced,
        "ok": (not speedup_enforced)
        or best_speedup >= SPEEDUP_THRESHOLD,
    }
    if not speedup_enforced:
        speedup_gate["skip_reason"] = (
            f"only {cores} usable core(s); {shards} shard processes "
            f"cannot run concurrently (need >= "
            f"{MIN_CORES_FOR_SPEEDUP_GATE} cores for a meaningful "
            "speedup measurement)"
        )
    bit_exact = all(query["bit_exact"] for query in scale["queries"])
    report = {
        "bench": "shard",
        "preset": config.preset,
        "rows": rows,
        "shards": shards,
        "usable_cores": cores,
        "scale": scale,
        "chaos": chaos,
        "gates": {
            "bit_exact": bit_exact,
            "speedup": speedup_gate,
            "chaos": chaos["ok"],
            "observability": scale["observability"]["ok"],
        },
        "ok": (
            bit_exact
            and speedup_gate["ok"]
            and chaos["ok"]
            and scale["observability"]["ok"]
        ),
    }
    return report


def format_shard_report(report: dict) -> str:
    lines = [
        f"Sharded execution — preset {report['preset']}, "
        f"{report['rows']:,} rows, {report['shards']} shards, "
        f"{report['usable_cores']} usable core(s)",
        "",
    ]
    for query in report["scale"]["queries"]:
        lines.append(
            f"  {query['name']:<16} single {query['single_seconds']:8.3f}s"
            f"  sharded {query['sharded_seconds']:8.3f}s"
            f"  speedup {query['speedup']:5.2f}x"
            f"  bit-exact {'yes' if query['bit_exact'] else 'NO'}"
        )
    speedup = report["gates"]["speedup"]
    if speedup["enforced"]:
        lines.append(
            f"  speedup gate: {speedup['value']:.2f}x vs "
            f">={speedup['threshold']}x -> "
            f"{'ok' if speedup['ok'] else 'FAILED'}"
        )
    else:
        lines.append(
            f"  speedup gate skipped: {speedup['skip_reason']} "
            f"(measured {speedup['value']:.2f}x, recorded only)"
        )
    chaos = report["chaos"]
    lines.append(
        f"  chaos: typed error {chaos['typed_error']} "
        f"({'mid-query' if chaos['killed_mid_query'] else 'post-kill'}), "
        f"drain {chaos['drain_seconds']:.2f}s "
        f"< {chaos['drain_bound_seconds']:.0f}s -> "
        f"{'ok' if chaos['ok'] else 'FAILED'}"
    )
    lines.append(
        "  system.shards: "
        + ", ".join(
            f"shard {row['shard_id']} rows={row['rows']:,} "
            f"rows_read={row['rows_read']:,}"
            for row in report["scale"]["observability"]["shard_rows"]
        )
    )
    lines.append("")
    lines.append("verdict: " + ("PASS" if report["ok"] else "FAIL"))
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
