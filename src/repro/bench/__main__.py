"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench fig8    [--preset smoke|default|paper] [--out F]
    python -m repro.bench fig9    ...
    python -m repro.bench table2  ...
    python -m repro.bench table3  ...
    python -m repro.bench all     ...
    python -m repro.bench serving --check-regression [--json BENCH_pr1.json]

The ``serving`` experiment measures cold vs warm ModelJoin latency
(the cross-query model build cache); with ``--check-regression`` it
exits non-zero unless every warm query beats its cold counterpart with
bit-exact predictions, and writes the evidence as JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import (
    BenchConfig,
    measure_memory_table,
    run_dense_sweep,
    run_lstm_sweep,
)
from repro.bench.reporting import (
    format_counter_summary,
    format_memory_table,
    format_qualitative_table,
    format_runtime_series,
    points_to_csv,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation artifacts",
    )
    parser.add_argument(
        "experiment",
        choices=["fig8", "fig9", "table2", "table3", "all", "serving"],
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=["smoke", "default", "paper"],
    )
    parser.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    parser.add_argument(
        "--csv", default=None, help="write raw sweep points as CSV"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="enable partition-parallel execution",
    )
    parser.add_argument(
        "--variants",
        default=None,
        help="comma-separated subset of the Figure-8/9 variant names",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="serving experiment: fail unless warm beats cold",
    )
    parser.add_argument(
        "--json",
        default="BENCH_pr1.json",
        help="serving experiment: where to write the JSON evidence",
    )
    arguments = parser.parse_args(argv)
    config = BenchConfig.from_preset(arguments.preset)
    if arguments.parallel:
        config = BenchConfig(
            **{**config.__dict__, "parallel": True}
        )
    if arguments.variants:
        config = config.with_variants(
            tuple(name.strip() for name in arguments.variants.split(","))
        )

    if arguments.experiment == "serving":
        from repro.bench.serving import (
            format_serving_report,
            run_cache_serving,
            write_report,
        )

        report = run_cache_serving(config)
        rendered = format_serving_report(report)
        print(rendered)
        if arguments.json:
            write_report(report, arguments.json)
            print(f"\nwrote {arguments.json}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check_regression and not report["ok"]:
            print("regression check FAILED", file=sys.stderr)
            return 1
        return 0

    sections: list[str] = []
    all_points = []
    if arguments.experiment in ("fig8", "all", "table2"):
        dense = run_dense_sweep(config)
        all_points.extend(dense)
        sections.append(
            format_runtime_series(
                dense,
                "Figure 8 — runtime results for dense layer networks "
                f"(preset {config.preset})",
            )
        )
    if arguments.experiment in ("fig9", "all", "table2"):
        lstm = run_lstm_sweep(config)
        all_points.extend(lstm)
        sections.append(
            format_runtime_series(
                lstm,
                "Figure 9 — runtime results for LSTM layer networks "
                f"(preset {config.preset})",
            )
        )
    if arguments.experiment in ("table3", "all", "table2"):
        memory = measure_memory_table(config)
        all_points.extend(memory)
        sections.append(format_memory_table(memory, config.table3_rows))
    if arguments.experiment in ("table2", "all"):
        runtime_points = [
            point
            for point in all_points
            if point.experiment in ("fig8", "fig9")
        ]
        memory_points = [
            point for point in all_points if point.experiment == "table3"
        ]
        sections.append(
            format_qualitative_table(runtime_points, memory_points)
        )
    counter_section = format_counter_summary(all_points)
    if counter_section:
        sections.append(counter_section)

    report = "\n\n".join(sections)
    print(report)
    if arguments.out:
        with open(arguments.out, "w") as handle:
            handle.write(report + "\n")
    if arguments.csv:
        with open(arguments.csv, "w") as handle:
            handle.write(points_to_csv(all_points) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
