"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench fig8    [--preset smoke|default|paper] [--out F]
    python -m repro.bench fig9    ...
    python -m repro.bench table2  ...
    python -m repro.bench table3  ...
    python -m repro.bench all     ...
    python -m repro.bench serving --check-regression [--json BENCH_pr1.json]
    python -m repro.bench tracing [--check-overhead] [--json BENCH_pr2.json]
    python -m repro.bench chaos   [--smoke] [--seed 7] [--json BENCH_pr3.json]
    python -m repro.bench plan    [--check] [--json BENCH_pr4.json]
    python -m repro.bench storage [--check] [--json BENCH_pr5.json]
    python -m repro.bench compile [--check] [--json BENCH_pr6.json]
    python -m repro.bench observe [--check] [--json BENCH_pr7.json]
    python -m repro.bench serve   [--check] [--json BENCH_pr8.json]
    python -m repro.bench shard   [--check] [--json BENCH_pr9.json]
    python -m repro.bench train   [--check] [--json BENCH_pr10.json]

The ``serving`` experiment measures cold vs warm ModelJoin latency
(the cross-query model build cache); with ``--check-regression`` it
exits non-zero unless every warm query beats its cold counterpart with
bit-exact predictions, and writes the evidence as JSON.

The ``tracing`` experiment runs the tracing-overhead gate (traced vs
untraced dense ModelJoin, <5% overhead) and exports a validated
Chrome-trace evidence file; ``--check-overhead`` turns the verdict
into the exit code.

The ``chaos`` experiment runs every fault-injection scenario (worker
and morsel crashes, GPU kernel faults, build failures, flaky ODBC
transfers, cache corruption, 10% disk block-read faults against a
persistent database) and gates on 100% query completion,
bit-exact results, bounded p95 latency, visible resilience metrics,
retry/fallback trace spans and zero disabled-injector overhead; it
always exits non-zero on failure.  ``--smoke`` is shorthand for
``--preset smoke``; ``--seed`` makes the injected fault schedule
reproducible.

The ``plan`` experiment measures the optimizer: planning overhead per
statement (<1 ms), pushdown speedup with bit-exact results on a
filtered dense-grid cell, and cost-based variant-selection accuracy
against exhaustive per-cell measurement (>=80%).  ``--check``
additionally fails when any cell's selected variant measures slower
than twice the empirically best variant.

The ``storage`` experiment measures the persistent storage engine
(docs/STORAGE.md): cold disk scans vs in-memory scans (<=3x,
bit-exact), zone-map block skipping on a filtered cell (>2x), and a
full scan under a buffer-pool byte cap far below the table size
(completes with evictions).  ``--check`` turns the verdict into the
exit code.

The ``compile`` experiment measures the pipeline-fusing query compiler
(docs/COMPILE.md): an expression-heavy polynomial query compiled vs
interpreted (>=2x, bit-exact), ModelJoin epilogue fusion vs the
interpreted epilogue (>1x, bit-exact), and cold compile overhead
(<1 ms/query, with warm repeats served from the kernel cache).
``--check`` turns the verdict into the exit code.

The ``observe`` experiment smokes the ``system.*`` virtual tables
against a persistent database (every table must answer through the
standard SQL path, non-empty where a fresh engine guarantees rows) and
gates query-log collection overhead on the PR1 serving workload at
<5% (docs/OBSERVABILITY.md).  ``--check`` turns the verdict into the
exit code.

The ``serve`` experiment gates the concurrent serving front-end
(docs/SERVING.md): sustained mixed OLAP/ModelJoin throughput from N
client sessions under concurrent checkpoint churn with zero
cross-session bleed and bounded p99, deterministic shedding under a
2x-capacity overload burst with nothing hung, and a chaos run with
10% injected faults (including the ``serve.admit`` site) where every
admitted query still completes bit-exact.  ``--check`` turns the
verdict into the exit code.

The ``shard`` experiment measures multiprocess sharded execution
(docs/SHARDING.md): a large scan + GROUP BY and a scan + MODEL JOIN,
single-process vs N shard processes (bit-exact required; the >=2.5x
speedup gate applies only on machines with >=4 usable cores), a chaos
shard-kill that must surface a typed error with a bounded drain, and
per-shard ``system.shards`` observability.  ``--check`` turns the
verdict into the exit code.

The ``train`` experiment gates the in-database training subsystem
(docs/TRAINING.md): ``CREATE MODEL`` convergence on a synthetic
linearly separable dataset (with time-per-epoch), bit-identical
weights across two same-seed runs, MODEL JOIN scoring parity with the
NumPy reference (max abs diff exactly 0), and retrain-and-swap under
live serving traffic (zero failed or torn queries, during-swap p99
under 2x the steady baseline, ``system.models`` reflecting the swap).
``--check`` turns the verdict into the exit code.

``--trace out.json`` on any sweep experiment records every swept
engine into one shared span timeline and exports it as
Chrome-trace/Perfetto JSON (open at https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import (
    BenchConfig,
    measure_memory_table,
    run_dense_sweep,
    run_lstm_sweep,
)
from repro.bench.reporting import (
    format_counter_summary,
    format_memory_table,
    format_metrics_summary,
    format_qualitative_table,
    format_runtime_series,
    points_to_csv,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation artifacts",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig8",
            "fig9",
            "table2",
            "table3",
            "all",
            "serving",
            "tracing",
            "chaos",
            "plan",
            "storage",
            "compile",
            "observe",
            "serve",
            "shard",
            "train",
        ],
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=["smoke", "default", "paper"],
    )
    parser.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    parser.add_argument(
        "--csv", default=None, help="write raw sweep points as CSV"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="enable partition-parallel execution",
    )
    parser.add_argument(
        "--variants",
        default=None,
        help="comma-separated subset of the Figure-8/9 variant names",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="serving experiment: fail unless warm beats cold",
    )
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help="tracing experiment: fail when tracing costs more than 5%%",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="serving/tracing/chaos/plan/storage/compile/observe/serve "
        "experiment: where to write the JSON evidence (defaults: "
        "BENCH_pr1.json / BENCH_pr2.json / BENCH_pr3.json / "
        "BENCH_pr4.json / BENCH_pr5.json / BENCH_pr6.json / "
        "BENCH_pr7.json / BENCH_pr8.json / BENCH_pr10.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="plan experiment: fail when any cell's selected variant "
        "measures slower than twice the best variant; storage/compile/"
        "observe experiments: fail unless every gate passes",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorthand for --preset smoke",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="chaos experiment: seed of the injected fault schedule",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans of every swept engine and export the "
        "combined Chrome-trace JSON to PATH",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        arguments.preset = "smoke"
    config = BenchConfig.from_preset(arguments.preset)
    if arguments.parallel:
        config = BenchConfig(
            **{**config.__dict__, "parallel": True}
        )
    if arguments.variants:
        config = config.with_variants(
            tuple(name.strip() for name in arguments.variants.split(","))
        )

    if arguments.experiment == "serving":
        from repro.bench.serving import (
            format_serving_report,
            run_cache_serving,
            write_report,
        )

        report = run_cache_serving(config)
        rendered = format_serving_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr1.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check_regression and not report["ok"]:
            print("regression check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "tracing":
        from repro.bench.tracing_bench import (
            format_tracing_report,
            run_tracing_bench,
            write_report,
        )

        trace_path = arguments.trace or "results/trace_evidence.json"
        report = run_tracing_bench(config, trace_path=trace_path)
        rendered = format_tracing_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr2.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if not report["trace"]["ok"]:
            print("trace evidence check FAILED", file=sys.stderr)
            return 1
        if arguments.check_overhead and not report["overhead"]["ok"]:
            print("tracing overhead check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "chaos":
        from repro.bench.chaos import (
            format_chaos_report,
            run_chaos_bench,
            write_report,
        )

        trace_path = arguments.trace or "results/chaos_trace.json"
        report = run_chaos_bench(
            config, seed=arguments.seed, trace_path=trace_path
        )
        rendered = format_chaos_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr3.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if not report["ok"]:
            print("chaos resilience check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "plan":
        from repro.bench.plan_bench import (
            format_plan_report,
            run_plan_bench,
            write_report,
        )

        report = run_plan_bench(config)
        rendered = format_plan_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr4.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if not report["ok"]:
            print("plan optimizer check FAILED", file=sys.stderr)
            return 1
        if arguments.check and not report["check"]["ok"]:
            print("variant smoke check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "storage":
        from repro.bench.storage_bench import (
            format_storage_report,
            run_storage_bench,
            write_report,
        )

        report = run_storage_bench(config)
        rendered = format_storage_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr5.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("storage check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "compile":
        from repro.bench.compile_bench import (
            format_compile_report,
            run_compile_bench,
            write_report,
        )

        report = run_compile_bench(config)
        rendered = format_compile_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr6.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("compile check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "observe":
        from repro.bench.observe_bench import (
            format_observe_report,
            run_observe_bench,
            write_report,
        )

        report = run_observe_bench(config)
        rendered = format_observe_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr7.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("observability check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "shard":
        from repro.bench.shard_bench import (
            format_shard_report,
            run_shard_bench,
            write_report,
        )

        report = run_shard_bench(config)
        rendered = format_shard_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr9.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("shard check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "train":
        from repro.bench.train_bench import (
            format_train_report,
            run_train_bench,
            write_report,
        )

        report = run_train_bench(config, seed=arguments.seed)
        rendered = format_train_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr10.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("training check FAILED", file=sys.stderr)
            return 1
        return 0

    if arguments.experiment == "serve":
        from repro.bench.serve_bench import (
            format_serve_report,
            run_serve_bench,
            write_report,
        )

        report = run_serve_bench(config, seed=arguments.seed)
        rendered = format_serve_report(report)
        print(rendered)
        json_path = arguments.json or "BENCH_pr8.json"
        write_report(report, json_path)
        print(f"\nwrote {json_path}")
        if arguments.out:
            with open(arguments.out, "w") as handle:
                handle.write(rendered + "\n")
        if arguments.check and not report["ok"]:
            print("serving check FAILED", file=sys.stderr)
            return 1
        return 0

    tracer = None
    if arguments.trace:
        from repro.db.tracing import Tracer

        tracer = Tracer(enabled=True)

    sections: list[str] = []
    all_points = []
    if arguments.experiment in ("fig8", "all", "table2"):
        dense = run_dense_sweep(config, tracer=tracer)
        all_points.extend(dense)
        sections.append(
            format_runtime_series(
                dense,
                "Figure 8 — runtime results for dense layer networks "
                f"(preset {config.preset})",
            )
        )
    if arguments.experiment in ("fig9", "all", "table2"):
        lstm = run_lstm_sweep(config, tracer=tracer)
        all_points.extend(lstm)
        sections.append(
            format_runtime_series(
                lstm,
                "Figure 9 — runtime results for LSTM layer networks "
                f"(preset {config.preset})",
            )
        )
    if arguments.experiment in ("table3", "all", "table2"):
        memory = measure_memory_table(config, tracer=tracer)
        all_points.extend(memory)
        sections.append(format_memory_table(memory, config.table3_rows))
    if arguments.experiment in ("table2", "all"):
        runtime_points = [
            point
            for point in all_points
            if point.experiment in ("fig8", "fig9")
        ]
        memory_points = [
            point for point in all_points if point.experiment == "table3"
        ]
        sections.append(
            format_qualitative_table(runtime_points, memory_points)
        )
    counter_section = format_counter_summary(all_points)
    if counter_section:
        sections.append(counter_section)
    metrics_section = format_metrics_summary(all_points)
    if metrics_section:
        sections.append(metrics_section)

    report = "\n\n".join(sections)
    print(report)
    if arguments.out:
        with open(arguments.out, "w") as handle:
            handle.write(report + "\n")
    if arguments.csv:
        with open(arguments.csv, "w") as handle:
            handle.write(points_to_csv(all_points) + "\n")
    if tracer is not None:
        events = tracer.export(arguments.trace)
        print(f"\nwrote {events} trace events to {arguments.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
