"""Cold-vs-warm serving benchmark for the ModelJoin build cache.

A serving workload issues the same scoring query repeatedly; with the
engine-lifetime :class:`~repro.core.modeljoin.cache.ModelCache` only
the first query pays the model build, every later one serves the
finalized weights from the cache.  This module measures exactly that:
per model cell it runs one *cold* query against a fresh engine and
several *warm* repeats, and records

* cold and warm end-to-end latency (warm = best of the repeats),
* the ``modeljoin-build`` phase seconds of both,
* the cache hit/miss and morsel counters from the query profiles,
* bit-exactness of warm vs cold predictions **and** vs a run on an
  engine with no cache installed at all.

``python -m repro.bench serving --check-regression`` turns the result
into a gate: it fails when any warm run is not faster than its cold
run (or predictions diverge), which is the observable contract of the
cache.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.bench.harness import BenchConfig
from repro.core.attach import connect
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.db.tracing import flatten_metrics
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model, make_lstm_model
from repro.workloads.timeseries import load_windowed_series_table

#: warm repeats per cell; the fastest is reported
WARM_REPEATS = 3


def _measure(runner: NativeModelJoin, env: dict) -> dict:
    started = time.perf_counter()
    predictions = runner.predict(
        env["fact_table"],
        env["id_column"],
        env["input_columns"],
        parallel=env["parallel"],
    )
    elapsed = time.perf_counter() - started
    profile = runner.last_profile
    return {
        "seconds": elapsed,
        "build_seconds": profile.stopwatch.phases.get(
            "modeljoin-build", 0.0
        ),
        "counters": profile.counters.snapshot(),
        "predictions": predictions,
    }


def _run_cell(cell: dict, config: BenchConfig) -> dict:
    parallelism = config.parallelism if config.parallel else 1

    def fresh_engine(with_cache: bool = True):
        database = connect(parallelism=parallelism)
        if not with_cache:
            database.model_cache = None
        if cell["kind"] == "dense":
            load_iris_table(
                database,
                cell["rows"],
                num_partitions=parallelism,
            )
            model = make_dense_model(
                cell["width"], cell["depth"], seed=17
            )
            env = {
                "fact_table": "iris",
                "id_column": "id",
                "input_columns": list(FEATURE_COLUMNS),
                "parallel": config.parallel,
            }
        else:
            load_windowed_series_table(
                database,
                cell["rows"],
                time_steps=cell["time_steps"],
                num_partitions=parallelism,
            )
            model = make_lstm_model(
                cell["width"], time_steps=cell["time_steps"], seed=17
            )
            env = {
                "fact_table": "sinus_windows",
                "id_column": "id",
                "input_columns": [
                    f"x{step}" for step in range(1, cell["time_steps"] + 1)
                ],
                "parallel": config.parallel,
            }
        publish_model(database, "serving_model", model, replace=True)
        return database, NativeModelJoin(database, "serving_model"), env

    database, runner, env = fresh_engine()
    cold = _measure(runner, env)
    warm_runs = [_measure(runner, env) for _ in range(WARM_REPEATS)]
    warm = min(warm_runs, key=lambda run: run["seconds"])
    bit_exact_warm = all(
        np.array_equal(run["predictions"], cold["predictions"])
        for run in warm_runs
    )
    cache_stats = database.model_cache.statistics()
    # Engine-lifetime metrics over the cold + warm runs: latency
    # percentiles, cumulative cache hit ratio, build-time histogram.
    engine_metrics = flatten_metrics(database.metrics.snapshot())
    database.close()

    # Reference run on an engine without any cache installed: the
    # cached path must be bit-exact with the plain build-every-time one.
    uncached_db, uncached_runner, uncached_env = fresh_engine(
        with_cache=False
    )
    uncached = _measure(uncached_runner, uncached_env)
    bit_exact_uncached = np.array_equal(
        uncached["predictions"], cold["predictions"]
    )
    uncached_db.close()

    warm_counters = warm["counters"]
    result = {
        "cell": {
            key: value
            for key, value in cell.items()
            if key != "predictions"
        },
        "cold_seconds": cold["seconds"],
        "warm_seconds": warm["seconds"],
        "cold_build_seconds": cold["build_seconds"],
        "warm_build_seconds": warm["build_seconds"],
        "speedup": (
            cold["seconds"] / warm["seconds"]
            if warm["seconds"] > 0
            else float("inf")
        ),
        "cold_counters": cold["counters"],
        "warm_counters": warm_counters,
        "cache_statistics": cache_stats,
        "metrics": engine_metrics,
        "bit_exact_warm": bool(bit_exact_warm),
        "bit_exact_uncached": bool(bit_exact_uncached),
        "warm_cache_hits": warm_counters.get("model-cache-hits", 0),
        "morsels": warm_counters.get("morsels", 0),
    }
    result["ok"] = (
        result["warm_seconds"] < result["cold_seconds"]
        and result["warm_cache_hits"] == 1
        and result["bit_exact_warm"]
        and result["bit_exact_uncached"]
    )
    return result


def serving_cells(config: BenchConfig) -> list[dict]:
    """The measured model grid: the dense cells plus one LSTM cell."""
    rows = min(config.fact_rows)
    cells = [
        {
            "kind": "dense",
            "rows": rows,
            "width": width,
            "depth": depth,
        }
        for width, depth in config.dense_grid
    ]
    cells.append(
        {
            "kind": "lstm",
            "rows": rows,
            "width": config.lstm_widths[0],
            "depth": 1,
            "time_steps": config.time_steps,
        }
    )
    return cells


def run_cache_serving(config: BenchConfig) -> dict:
    """Run the full serving sweep; returns the JSON-ready report."""
    results = [_run_cell(cell, config) for cell in serving_cells(config)]
    return {
        "experiment": "cache_serving",
        "preset": config.preset,
        "parallel": config.parallel,
        "parallelism": config.parallelism,
        "warm_repeats": WARM_REPEATS,
        "cells": results,
        "ok": all(result["ok"] for result in results),
    }


def format_serving_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_cache_serving` result."""
    from repro.bench.reporting import format_seconds

    title = (
        "Serving — cold vs warm ModelJoin latency "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title)]
    header = (
        f"{'model':<22} {'cold':>9} {'warm':>9} {'speedup':>8} "
        f"{'build cold':>11} {'build warm':>11} {'hits':>5} {'ok':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for result in report["cells"]:
        cell = result["cell"]
        if cell["kind"] == "dense":
            label = f"dense w={cell['width']} d={cell['depth']}"
        else:
            label = f"lstm w={cell['width']} t={cell['time_steps']}"
        lines.append(
            f"{label:<22} "
            f"{format_seconds(result['cold_seconds']):>9} "
            f"{format_seconds(result['warm_seconds']):>9} "
            f"{result['speedup']:>7.1f}x "
            f"{format_seconds(result['cold_build_seconds']):>11} "
            f"{format_seconds(result['warm_build_seconds']):>11} "
            f"{result['warm_cache_hits']:>5} "
            f"{'yes' if result['ok'] else 'NO':>4}"
        )
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"\nRegression check: {verdict} "
        "(warm < cold, one cache hit, bit-exact predictions)"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
