"""Optimizer benchmark: overhead, pushdown speedup, variant accuracy.

Three gates over the PR's planning stack (``repro.db.plan``):

* **overhead** — ``prepare`` (bind + rewrite + variant selection) plus
  ``lower`` must stay under 1 ms per query across a representative mix
  of statements; planning cost must be invisible next to execution.
* **pushdown** — a filtered, projected ModelJoin query over a dense
  model must get faster with the rewrite rules on (predicates and
  projections sink below the ModelJoin / into the scan) while staying
  bit-exact with the unoptimized plan.
* **accuracy** — the cost-based variant selector's top pick must be the
  empirically fastest variant on at least 80% of the measured
  dense-grid cells (exhaustive measurement of every variant per cell).

``python -m repro.bench plan`` prints the report and writes the JSON
evidence (default ``BENCH_pr4.json``); ``--check`` additionally fails
when any cell's selected variant measures slower than twice the best
variant — the CI smoke gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from repro.bench.harness import BenchConfig
from repro.bench.variants import (
    LEGEND_VARIANT,
    VARIANT_LEGEND,
    BenchEnvironment,
    make_variant,
)
from repro.core.attach import connect
from repro.core.ml_to_sql.generator import dense_join_work
from repro.core.registry import publish_model
from repro.db.sql.parser import parse_statement
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

#: planning (prepare + lower) budget per statement
OVERHEAD_TARGET_MS = 1.0
#: fraction of dense-grid cells whose predicted-best variant must be
#: the measured-best variant
ACCURACY_THRESHOLD = 0.8
#: ``--check``: the selected variant may measure at most this factor
#: slower than the measured-best variant
CHECK_FACTOR = 2.0
#: measurement repeats per (cell, variant); the fastest run counts
MEASURE_REPEATS = 2

_USING = ", ".join(FEATURE_COLUMNS)

#: representative statement mix for the planning-overhead gate
OVERHEAD_QUERIES = (
    "SELECT * FROM iris",
    "SELECT id, sepal_length FROM iris WHERE id < 100",
    "SELECT species, COUNT(*) FROM iris GROUP BY species",
    "SELECT * FROM iris ORDER BY id LIMIT 10",
    "SELECT a.id, b.species FROM iris a JOIN iris b ON a.id = b.id "
    "WHERE a.sepal_length > 1.0",
    f"SELECT id, prediction_0 FROM iris MODEL JOIN clf USING ({_USING})",
    f"SELECT id, prediction_0 FROM iris MODEL JOIN clf USING ({_USING}) "
    "WHERE id < 100",
    f"SELECT id, prediction_0 FROM iris MODEL JOIN clf USING ({_USING}) "
    "VARIANT 'native-cpu' ORDER BY id LIMIT 5",
)

#: Figure-8 legend names measured exhaustively per accuracy cell (the
#: external baseline is excluded: its ODBC transfer makes it strictly
#: dominated and very slow to measure)
MEASURED_LEGENDS = (
    "ModelJoin_CPU",
    "ModelJoin_GPU",
    "TF_CAPI_CPU",
    "UDF",
    "ML-To-SQL",
)


def _dense_engine(rows: int, width: int, depth: int, seed: int = 17):
    """A connected engine with the iris table and a published model."""
    database = connect()
    load_iris_table(database, rows)
    model = make_dense_model(width, depth, seed=seed)
    publish_model(database, "clf", model, replace=True)
    return database, model


# ----------------------------------------------------------------------
# gate 1: planning overhead
# ----------------------------------------------------------------------
def measure_overhead(config: BenchConfig, repeats: int = 5) -> dict:
    """prepare+lower latency per statement of the representative mix."""
    database, _ = _dense_engine(min(config.fact_rows), 8, 2)
    planner = database._planner()
    context = database._context(parallelism=1)
    queries = []
    for sql in OVERHEAD_QUERIES:
        statement = parse_statement(sql)
        best_prepare = best_lower = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            prepared = planner.prepare(statement)
            prepared_at = time.perf_counter()
            planner.lower(prepared, context)
            lowered_at = time.perf_counter()
            best_prepare = min(best_prepare, prepared_at - started)
            best_lower = min(best_lower, lowered_at - prepared_at)
        queries.append(
            {
                "sql": sql,
                "prepare_ms": best_prepare * 1e3,
                "lower_ms": best_lower * 1e3,
                "total_ms": (best_prepare + best_lower) * 1e3,
            }
        )
    database.close()
    worst = max(query["total_ms"] for query in queries)
    mean = sum(query["total_ms"] for query in queries) / len(queries)
    return {
        "queries": queries,
        "mean_ms": mean,
        "worst_ms": worst,
        "target_ms": OVERHEAD_TARGET_MS,
        "ok": worst < OVERHEAD_TARGET_MS,
    }


# ----------------------------------------------------------------------
# gate 2: pushdown speedup
# ----------------------------------------------------------------------
def measure_pushdown(config: BenchConfig, repeats: int = 5) -> dict:
    """Filtered+projected ModelJoin, rules on vs rules off, bit-exact.

    The default cell is the paper-scale 500k-tuple dense-grid point;
    the smoke preset scales it down for CI.
    """
    rows = 500_000 if config.preset != "smoke" else 50_000
    width, depth = (32, 4) if config.preset != "smoke" else (8, 2)
    selective = rows // 10
    sql = (
        f"SELECT id, prediction_0 FROM iris MODEL JOIN clf "
        f"USING ({_USING}) WHERE id < {selective}"
    )

    def run(optimized: bool) -> dict:
        database, _ = _dense_engine(rows, width, depth)
        database.planner_options = replace(
            database.planner_options, use_optimizer_rules=optimized
        )
        best = float("inf")
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = database.execute(sql)
            best = min(best, time.perf_counter() - started)
        counters = database.last_profile.counters.snapshot()
        outcome = {
            "seconds": best,
            "rows": result.row_count,
            "ids": result.column("id"),
            "predictions": result.column("prediction_0"),
            "columns_fetched": counters.get("scan.columns_fetched", 0),
        }
        database.close()
        return outcome

    optimized = run(True)
    baseline = run(False)
    bit_exact = np.array_equal(
        optimized["ids"], baseline["ids"]
    ) and np.array_equal(optimized["predictions"], baseline["predictions"])
    report = {
        "sql": sql,
        "rows": rows,
        "selected_rows": optimized["rows"],
        "width": width,
        "depth": depth,
        "optimized_seconds": optimized["seconds"],
        "baseline_seconds": baseline["seconds"],
        "speedup": (
            baseline["seconds"] / optimized["seconds"]
            if optimized["seconds"] > 0
            else float("inf")
        ),
        "columns_fetched_optimized": optimized["columns_fetched"],
        "columns_fetched_baseline": baseline["columns_fetched"],
        "bit_exact": bool(bit_exact),
    }
    report["ok"] = (
        report["bit_exact"]
        and report["speedup"] > 1.0
        and report["columns_fetched_optimized"]
        < report["columns_fetched_baseline"]
    )
    return report


# ----------------------------------------------------------------------
# gate 3: variant-selection accuracy
# ----------------------------------------------------------------------
def _measure_variant(legend: str, database, model) -> float:
    env = BenchEnvironment(
        database=database,
        model=model,
        fact_table="iris",
        id_column="id",
        input_columns=list(FEATURE_COLUMNS),
        model_name="clf",
    )
    variant = make_variant(legend)
    variant.prepare(env)
    best = float("inf")
    for _ in range(MEASURE_REPEATS):
        best = min(best, variant.run(env).seconds)
    return best


def measure_accuracy(config: BenchConfig) -> dict:
    """Exhaustive per-cell measurement vs the selector's prediction."""
    rows = max(config.fact_rows)
    cells = []
    observations: dict[str, list[tuple[int, float, float]]] = {}
    for width, depth in config.dense_grid:
        database, model = _dense_engine(rows, width, depth)
        selector = database.variant_selector
        metadata = database.catalog.model("clf")
        flops = selector.flops_per_tuple(metadata)
        measured: dict[str, float] = {}
        for legend in MEASURED_LEGENDS:
            name = LEGEND_VARIANT[legend]
            if (
                name == "ml-to-sql"
                and dense_join_work(rows, width, depth, metadata.input_width)
                > config.mltosql_work_cap
            ):
                continue
            seconds = _measure_variant(legend, database, model)
            measured[name] = seconds
            observations.setdefault(name, []).append(
                (rows, flops, seconds)
            )
        predicted = {
            name: selector.predict(name, metadata, rows)
            for name in measured
        }
        chosen = min(predicted, key=predicted.get)
        fastest = min(measured, key=measured.get)
        cells.append(
            {
                "rows": rows,
                "width": width,
                "depth": depth,
                "measured_seconds": measured,
                "predicted_seconds": predicted,
                "chosen": chosen,
                "fastest": fastest,
                "correct": chosen == fastest,
                "chosen_over_best": (
                    measured[chosen] / measured[fastest]
                    if measured[fastest] > 0
                    else float("inf")
                ),
            }
        )
        database.close()
    correct = sum(1 for cell in cells if cell["correct"])
    fitted = {
        name: _fit(points)
        for name, points in observations.items()
        if len(points) >= 3
    }
    # The accuracy gate applies to the real dense grid only: the smoke
    # grid's cells are so small that every variant finishes within the
    # noise floor, which says nothing about the cost model.  Smoke runs
    # are still gated on the 2x rule (the ``check`` section).
    gated = config.preset != "smoke"
    return {
        "rows": rows,
        "cells": cells,
        "correct": correct,
        "total": len(cells),
        "accuracy": correct / len(cells) if cells else 0.0,
        "threshold": ACCURACY_THRESHOLD,
        "gated": gated,
        "fitted_coefficients": fitted,
        "ok": not gated
        or (bool(cells) and correct / len(cells) >= ACCURACY_THRESHOLD),
    }


def _fit(points: list[tuple[int, float, float]]) -> list[float]:
    """Least-squares (a, b, c) over this run's own measurements —
    printed so ``DEFAULT_COEFFICIENTS`` can be recalibrated offline."""
    from repro.core.cost.model import InferenceCostModel

    model = InferenceCostModel()
    model.calibrate(points)
    return [float(value) for value in model.coefficients]


def run_plan_bench(config: BenchConfig) -> dict:
    overhead = measure_overhead(config)
    pushdown = measure_pushdown(config)
    accuracy = measure_accuracy(config)
    check_cells = [
        {
            "width": cell["width"],
            "depth": cell["depth"],
            "chosen": cell["chosen"],
            "chosen_over_best": cell["chosen_over_best"],
            "ok": cell["chosen_over_best"] <= CHECK_FACTOR,
        }
        for cell in accuracy["cells"]
    ]
    check = {
        "factor": CHECK_FACTOR,
        "cells": check_cells,
        "ok": all(cell["ok"] for cell in check_cells),
    }
    return {
        "experiment": "plan_optimizer",
        "preset": config.preset,
        "overhead": overhead,
        "pushdown": pushdown,
        "accuracy": accuracy,
        "check": check,
        "ok": overhead["ok"] and pushdown["ok"] and accuracy["ok"],
    }


def format_plan_report(report: dict) -> str:
    title = (
        "Plan — optimizer overhead, pushdown, variant selection "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title), ""]

    overhead = report["overhead"]
    lines.append(
        f"Planning overhead (target < {overhead['target_ms']:.1f} ms, "
        f"{'PASS' if overhead['ok'] else 'FAIL'})"
    )
    for query in overhead["queries"]:
        sql = query["sql"]
        label = sql if len(sql) <= 56 else sql[:53] + "..."
        lines.append(
            f"  {query['total_ms']:7.3f} ms "
            f"(prepare {query['prepare_ms']:.3f} + "
            f"lower {query['lower_ms']:.3f})  {label}"
        )
    lines.append(
        f"  mean {overhead['mean_ms']:.3f} ms, "
        f"worst {overhead['worst_ms']:.3f} ms"
    )

    pushdown = report["pushdown"]
    lines.append("")
    lines.append(
        f"Pushdown ({pushdown['rows']} tuples, dense "
        f"w={pushdown['width']} d={pushdown['depth']}, "
        f"{'PASS' if pushdown['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  optimized {pushdown['optimized_seconds']:.3f} s vs baseline "
        f"{pushdown['baseline_seconds']:.3f} s "
        f"({pushdown['speedup']:.2f}x), bit-exact="
        f"{pushdown['bit_exact']}, columns fetched "
        f"{pushdown['columns_fetched_optimized']} vs "
        f"{pushdown['columns_fetched_baseline']}"
    )

    accuracy = report["accuracy"]
    lines.append("")
    verdict = "PASS" if accuracy["ok"] else "FAIL"
    if not accuracy["gated"]:
        verdict = "informational (smoke grid)"
    lines.append(
        f"Variant selection accuracy {accuracy['correct']}/"
        f"{accuracy['total']} = {accuracy['accuracy']:.0%} "
        f"(threshold {accuracy['threshold']:.0%}, {verdict})"
    )
    for cell in accuracy["cells"]:
        legend = VARIANT_LEGEND.get(cell["chosen"], cell["chosen"])
        marker = "ok" if cell["correct"] else "MISS"
        lines.append(
            f"  w={cell['width']:<4} d={cell['depth']:<2} "
            f"chose {legend:<14} fastest "
            f"{VARIANT_LEGEND.get(cell['fastest'], cell['fastest']):<14} "
            f"({cell['chosen_over_best']:.2f}x best)  {marker}"
        )
    if accuracy["fitted_coefficients"]:
        lines.append("  fitted coefficients (a, b, c) from this run:")
        for name, (a, b, c) in sorted(
            accuracy["fitted_coefficients"].items()
        ):
            lines.append(f"    {name:<12} ({a:.3e}, {b:.3e}, {c:.3e})")

    check = report["check"]
    lines.append("")
    lines.append(
        f"Check: chosen within {check['factor']:.0f}x of best on every "
        f"cell — {'PASS' if check['ok'] else 'FAIL'}"
    )
    lines.append(
        f"\nOverall: {'PASS' if report['ok'] else 'FAIL'}"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
