"""Storage benchmark: disk-scan overhead, block skipping, buffer pool.

Three gates over the persistent storage engine (``repro.db.storage``,
see docs/STORAGE.md):

* **disk vs memory** — a cold full scan of a reopened disk-resident
  table (fresh engine, empty buffer pool: every block read + decoded)
  must stay within 3x the same scan on the in-memory table, bit-exact;
  the warm (pool-cached) re-scan is reported alongside.
* **block skip** — a selective filtered scan with zone-map pruning on
  must beat the same query with pruning off by more than 2x on a cold
  pool (pruning reads only the surviving blocks' bytes), bit-exact.
* **buffer pool** — a full scan under a byte cap far below the table
  size must complete with evictions, bit-exact, while the pool's
  resident bytes stay bounded by the cap.

``python -m repro.bench storage`` prints the report and writes the
JSON evidence (default ``BENCH_pr5.json``); ``--check`` turns the
verdict into the exit code — the CI smoke gate.  The default cell is
the paper-scale 500k-tuple table; the smoke preset scales to 50k.
"""

from __future__ import annotations

import gc
import json
import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig
from repro.core.attach import connect

#: cold disk scan may cost at most this factor over the memory scan
DISK_FACTOR = 3.0
#: zone-map pruning must beat the unpruned scan by this factor
SKIP_FACTOR = 2.0
#: buffer-pool gate: cap as a fraction of the table's raw bytes
POOL_CAP_FRACTION = 1 / 8
#: timed repeats; the fastest run counts
REPEATS = 3

PARTITIONS = 2

SCAN_SQL = "SELECT id, f0 FROM fact"


def _cell_rows(config: BenchConfig) -> int:
    return 50_000 if config.preset == "smoke" else 500_000


def _fact_arrays(rows: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(23)
    return {
        "id": np.arange(rows, dtype=np.int64),
        "f0": rng.random(rows, dtype=np.float32),
        "f1": rng.random(rows, dtype=np.float32),
    }


def _create_fact(database, rows: int) -> None:
    database.execute(
        "CREATE TABLE fact (id BIGINT, f0 FLOAT, f1 FLOAT) "
        f"PARTITIONS {PARTITIONS}"
    )
    database.table("fact").append_columns(**_fact_arrays(rows))


def _raw_bytes(rows: int) -> int:
    return rows * (8 + 4 + 4)


def _build_database_dir(root: Path, rows: int) -> Path:
    """A checkpointed persistent database directory with the fact table."""
    path = root / "db"
    database = connect(path=str(path))
    _create_fact(database, rows)
    database.close()
    return path


class _quiet_gc:
    """Collect up front and pause the cyclic GC while timing.

    The scan allocates thousands of short-lived vectors; a collection
    landing inside one timed run would be attributed to whichever gate
    happened to trigger it.
    """

    def __enter__(self):
        gc.collect()
        self._was_enabled = gc.isenabled()
        gc.disable()

    def __exit__(self, *exc):
        if self._was_enabled:
            gc.enable()
        return False


def _timed(database, sql: str, repeats: int = REPEATS):
    """(best seconds of *repeats*, last result)."""
    best = float("inf")
    result = None
    with _quiet_gc():
        for _ in range(repeats):
            started = time.perf_counter()
            result = database.execute(sql)
            best = min(best, time.perf_counter() - started)
    return best, result


def _columns(result) -> tuple[np.ndarray, np.ndarray]:
    return np.asarray(result.column("id")), np.asarray(result.column("f0"))


def _bit_exact(left, right) -> bool:
    return all(
        a.tobytes() == b.tobytes()
        for a, b in zip(_columns(left), _columns(right))
    )


# ----------------------------------------------------------------------
# gate 1: cold disk scan vs in-memory scan
# ----------------------------------------------------------------------
def measure_disk_vs_memory(config: BenchConfig, path: Path) -> dict:
    rows = _cell_rows(config)
    memory_db = connect()
    _create_fact(memory_db, rows)
    memory_seconds, memory_result = _timed(memory_db, SCAN_SQL)
    memory_db.close()

    # Cold = a fresh engine (empty buffer pool) per repeat, matching the
    # block-skip gate; the best repeat is the cold cost, the pool-cached
    # re-scan on the last engine is the warm cost.
    cold_seconds = float("inf")
    cold_result = None
    with _quiet_gc():
        for attempt in range(REPEATS):
            disk_db = connect(path=str(path))
            started = time.perf_counter()
            cold_result = disk_db.execute(SCAN_SQL)
            cold_seconds = min(
                cold_seconds, time.perf_counter() - started
            )
            if attempt < REPEATS - 1:
                disk_db.close()
    warm_seconds, warm_result = _timed(disk_db, SCAN_SQL)
    metrics = {
        name: disk_db.metrics.counter(name).value
        for name in ("storage.blocks_read", "storage.bytes_decompressed")
    }
    pool = disk_db.storage.buffer_pool.statistics.snapshot()
    disk_db.close()

    report = {
        "rows": rows,
        "sql": SCAN_SQL,
        "memory_seconds": memory_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_over_memory": (
            cold_seconds / memory_seconds
            if memory_seconds > 0
            else float("inf")
        ),
        "factor": DISK_FACTOR,
        "bit_exact": _bit_exact(cold_result, memory_result)
        and _bit_exact(warm_result, memory_result),
        "metrics": metrics,
        "pool": pool,
    }
    report["ok"] = (
        report["bit_exact"] and report["cold_over_memory"] <= DISK_FACTOR
    )
    return report


# ----------------------------------------------------------------------
# gate 2: zone-map block skipping
# ----------------------------------------------------------------------
def measure_block_skip(config: BenchConfig, path: Path) -> dict:
    rows = _cell_rows(config)
    selective = rows // 100
    sql = f"SELECT id, f0 FROM fact WHERE id < {selective}"

    def cold_run(pruning: bool) -> dict:
        """Best-of-repeats on a fresh engine each time (cold pool)."""
        best = float("inf")
        result = None
        skipped = read = 0
        with _quiet_gc():
            for _ in range(REPEATS):
                database = connect(path=str(path))
                database.planner_options = replace(
                    database.planner_options, use_block_pruning=pruning
                )
                started = time.perf_counter()
                result = database.execute(sql)
                best = min(best, time.perf_counter() - started)
                skipped = database.metrics.counter(
                    "storage.blocks_skipped"
                ).value
                read = database.metrics.counter(
                    "storage.blocks_read"
                ).value
                database.close()
        return {
            "seconds": best,
            "result": result,
            "blocks_skipped": skipped,
            "blocks_read": read,
        }

    pruned = cold_run(True)
    full = cold_run(False)
    report = {
        "rows": rows,
        "sql": sql,
        "pruned_seconds": pruned["seconds"],
        "full_seconds": full["seconds"],
        "speedup": (
            full["seconds"] / pruned["seconds"]
            if pruned["seconds"] > 0
            else float("inf")
        ),
        "factor": SKIP_FACTOR,
        "blocks_skipped": pruned["blocks_skipped"],
        "blocks_read_pruned": pruned["blocks_read"],
        "blocks_read_full": full["blocks_read"],
        "selected_rows": pruned["result"].row_count,
        "bit_exact": _bit_exact(pruned["result"], full["result"]),
    }
    report["ok"] = (
        report["bit_exact"]
        and report["speedup"] > SKIP_FACTOR
        and report["blocks_skipped"] > 0
    )
    return report


# ----------------------------------------------------------------------
# gate 3: byte-capped buffer pool
# ----------------------------------------------------------------------
def measure_buffer_pool(config: BenchConfig, path: Path) -> dict:
    rows = _cell_rows(config)
    table_bytes = _raw_bytes(rows)
    cap = max(int(table_bytes * POOL_CAP_FRACTION), 128 * 1024)
    database = connect(path=str(path), buffer_pool_bytes=cap)
    seconds, result = _timed(database, SCAN_SQL, repeats=1)
    pool = database.storage.buffer_pool
    statistics = pool.statistics.snapshot()
    resident = pool.resident_bytes
    database.close()

    reference = _fact_arrays(rows)
    ids, f0 = _columns(result)
    order = np.argsort(ids, kind="stable")
    bit_exact = (
        ids[order].tobytes() == reference["id"].tobytes()
        and f0[order].tobytes() == reference["f0"].tobytes()
    )
    report = {
        "rows": rows,
        "table_bytes": table_bytes,
        "capacity_bytes": cap,
        "seconds": seconds,
        "evictions": statistics["evictions"],
        "resident_bytes": resident,
        "pool": statistics,
        "bit_exact": bool(bit_exact),
    }
    report["ok"] = (
        report["bit_exact"]
        and cap < table_bytes
        and statistics["evictions"] > 0
        and resident < table_bytes
    )
    return report


def run_storage_bench(config: BenchConfig) -> dict:
    rows = _cell_rows(config)
    workdir = Path(tempfile.mkdtemp(prefix="repro-storage-bench-"))
    try:
        path = _build_database_dir(workdir, rows)
        disk_vs_memory = measure_disk_vs_memory(config, path)
        block_skip = measure_block_skip(config, path)
        buffer_pool = measure_buffer_pool(config, path)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "experiment": "storage",
        "preset": config.preset,
        "disk_vs_memory": disk_vs_memory,
        "block_skip": block_skip,
        "buffer_pool": buffer_pool,
        "ok": disk_vs_memory["ok"]
        and block_skip["ok"]
        and buffer_pool["ok"],
    }


def format_storage_report(report: dict) -> str:
    title = (
        "Storage — disk scans, zone-map skipping, buffer pool "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title), ""]

    dvm = report["disk_vs_memory"]
    lines.append(
        f"Cold disk scan vs memory ({dvm['rows']} tuples, "
        f"target <= {dvm['factor']:.0f}x, "
        f"{'PASS' if dvm['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  memory {dvm['memory_seconds'] * 1e3:.1f} ms, cold disk "
        f"{dvm['cold_seconds'] * 1e3:.1f} ms "
        f"({dvm['cold_over_memory']:.2f}x), warm disk "
        f"{dvm['warm_seconds'] * 1e3:.1f} ms, "
        f"bit_exact={dvm['bit_exact']}"
    )
    lines.append(
        f"  blocks_read={dvm['metrics']['storage.blocks_read']}, "
        f"bytes_decompressed="
        f"{dvm['metrics']['storage.bytes_decompressed']}"
    )

    skip = report["block_skip"]
    lines.append("")
    lines.append(
        f"Zone-map block skipping (target > {skip['factor']:.0f}x, "
        f"{'PASS' if skip['ok'] else 'FAIL'})"
    )
    lines.append(f"  {skip['sql']}")
    lines.append(
        f"  pruned {skip['pruned_seconds'] * 1e3:.1f} ms "
        f"(read {skip['blocks_read_pruned']} blocks, skipped "
        f"{skip['blocks_skipped']}) vs full "
        f"{skip['full_seconds'] * 1e3:.1f} ms "
        f"(read {skip['blocks_read_full']}) — "
        f"{skip['speedup']:.2f}x, bit_exact={skip['bit_exact']}"
    )

    pool = report["buffer_pool"]
    lines.append("")
    lines.append(
        f"Buffer pool under byte cap "
        f"({'PASS' if pool['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  cap {pool['capacity_bytes']} B < table "
        f"{pool['table_bytes']} B; scan {pool['seconds'] * 1e3:.1f} ms, "
        f"evictions={pool['evictions']}, resident "
        f"{pool['resident_bytes']} B, bit_exact={pool['bit_exact']}"
    )

    lines.append(f"\nOverall: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
