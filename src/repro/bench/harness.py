"""Sweep runners for the paper's experiments.

Python being ~two orders of magnitude slower per operation than the
paper's C++ engine, the *default* preset scales the sweep sizes down
while keeping the paper's parameter grid identity; the *paper* preset
runs the original sizes (documented as a long run); *smoke* is the CI
preset.  ML-To-SQL cells whose estimated intermediate-result volume
exceeds the work cap are skipped and recorded as such — the same
blow-up the paper reports as that approach's poor scalability, hit
sooner on a Python substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.bench.variants import (
    ALL_VARIANT_NAMES,
    BenchEnvironment,
    RunMeasurement,
    make_variant,
)
from repro.core.attach import connect
from repro.core.ml_to_sql.generator import dense_join_work, lstm_join_work
from repro.errors import ReproError
from repro.nn.model import Sequential
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import (
    TABLE3_MODELS,
    make_dense_model,
    make_lstm_model,
)
from repro.workloads.timeseries import load_windowed_series_table


@dataclass(frozen=True)
class BenchConfig:
    """Parameters of one sweep (see module docstring for presets)."""

    preset: str = "default"
    fact_rows: tuple[int, ...] = (2_000, 10_000, 30_000)
    dense_grid: tuple[tuple[int, int], ...] = tuple(
        (width, depth) for width in (32, 128, 512) for depth in (2, 4, 8)
    )
    lstm_widths: tuple[int, ...] = (32, 128, 512)
    time_steps: int = 3
    variants: tuple[str, ...] = ALL_VARIANT_NAMES
    parallel: bool = False
    parallelism: int = 4
    #: skip ML-To-SQL cells whose estimated join volume exceeds this
    mltosql_work_cap: int = 40_000_000
    table3_rows: int = 20_000
    verify_predictions: bool = False

    @classmethod
    def from_preset(cls, preset: str) -> "BenchConfig":
        if preset == "smoke":
            return cls(
                preset="smoke",
                fact_rows=(500, 2_000),
                dense_grid=((8, 2), (16, 4)),
                lstm_widths=(8, 16),
                mltosql_work_cap=10_000_000,
                table3_rows=2_000,
                verify_predictions=True,
            )
        if preset == "default":
            return cls()
        if preset == "paper":
            return cls(
                preset="paper",
                fact_rows=(100_000, 250_000, 500_000),
                table3_rows=100_000,
                mltosql_work_cap=200_000_000,
                parallel=True,
                parallelism=12,
            )
        raise ReproError(f"unknown preset {preset!r}")

    def with_variants(self, names: tuple[str, ...]) -> "BenchConfig":
        return replace(self, variants=names)


@dataclass
class SweepPoint:
    """One measurement (or skip record) of a sweep."""

    experiment: str
    variant: str
    rows: int
    width: int
    depth: int
    seconds: float | None
    wall_seconds: float | None = None
    peak_memory_bytes: int | None = None
    skipped: bool = False
    note: str = ""
    extra: dict = field(default_factory=dict)


# Work estimates shared with the optimizer/bench layers live next to
# the query generator itself.
_mltosql_dense_work = dense_join_work
_mltosql_lstm_work = lstm_join_work


def _verify(
    model: Sequential,
    inputs: np.ndarray,
    measurement: RunMeasurement,
) -> str:
    if measurement.predictions is None:
        return ""
    reference = model.predict(inputs)
    error = float(np.abs(measurement.predictions - reference).max())
    if error > 1e-3:
        raise ReproError(
            f"{measurement.variant} diverged from the reference "
            f"(max abs err {error})"
        )
    return f"max_err={error:.2e}"


def run_dense_sweep(
    config: BenchConfig, tracer=None
) -> list[SweepPoint]:
    """Figure 8: dense models, all variants, fact-tuple sweep.

    With *tracer* (an enabled :class:`repro.db.tracing.Tracer`) every
    swept engine records into one shared timeline, which the CLI's
    ``--trace`` flag exports after the sweep.
    """
    points: list[SweepPoint] = []
    for width, depth in config.dense_grid:
        model = make_dense_model(width, depth, input_width=4, seed=width + depth)
        for rows in config.fact_rows:
            database = connect(
                parallelism=config.parallelism, tracer=tracer
            )
            dataset = load_iris_table(
                database,
                rows,
                num_partitions=(
                    config.parallelism if config.parallel else 1
                ),
            )
            env = BenchEnvironment(
                database=database,
                model=model,
                fact_table="iris",
                id_column="id",
                input_columns=list(FEATURE_COLUMNS),
                parallel=config.parallel,
                keep_predictions=config.verify_predictions,
            )
            for name in config.variants:
                point = _run_cell(
                    "fig8",
                    name,
                    env,
                    rows,
                    width,
                    depth,
                    work=_mltosql_dense_work(rows, width, depth, 4),
                    config=config,
                    verify_inputs=dataset.features,
                )
                points.append(point)
    return points


def run_lstm_sweep(
    config: BenchConfig, tracer=None
) -> list[SweepPoint]:
    """Figure 9: LSTM models, all variants, fact-tuple sweep."""
    points: list[SweepPoint] = []
    for width in config.lstm_widths:
        model = make_lstm_model(
            width, time_steps=config.time_steps, seed=width
        )
        for rows in config.fact_rows:
            database = connect(
                parallelism=config.parallelism, tracer=tracer
            )
            series = load_windowed_series_table(
                database,
                rows,
                time_steps=config.time_steps,
                num_partitions=(
                    config.parallelism if config.parallel else 1
                ),
            )
            _, windows = series.windows()
            env = BenchEnvironment(
                database=database,
                model=model,
                fact_table="sinus_windows",
                id_column="id",
                input_columns=[
                    f"x{step}" for step in range(1, config.time_steps + 1)
                ],
                parallel=config.parallel,
                keep_predictions=config.verify_predictions,
            )
            for name in config.variants:
                point = _run_cell(
                    "fig9",
                    name,
                    env,
                    rows,
                    width,
                    depth=1,
                    work=_mltosql_lstm_work(
                        rows, width, config.time_steps
                    ),
                    config=config,
                    verify_inputs=windows,
                )
                points.append(point)
    return points


def _run_cell(
    experiment: str,
    variant_name: str,
    env: BenchEnvironment,
    rows: int,
    width: int,
    depth: int,
    work: int,
    config: BenchConfig,
    verify_inputs: np.ndarray,
) -> SweepPoint:
    if variant_name == "ML-To-SQL" and work > config.mltosql_work_cap:
        return SweepPoint(
            experiment=experiment,
            variant=variant_name,
            rows=rows,
            width=width,
            depth=depth,
            seconds=None,
            skipped=True,
            note=(
                f"skipped: estimated join volume {work:.2e} rows exceeds "
                f"work cap {config.mltosql_work_cap:.2e} (the approach's "
                "quadratic intermediate-result growth, paper §6.2.1)"
            ),
        )
    variant = make_variant(variant_name)
    variant.prepare(env)
    measurement = variant.run(env)
    note = ""
    if config.verify_predictions:
        note = _verify(env.model, verify_inputs, measurement)
    return SweepPoint(
        experiment=experiment,
        variant=variant_name,
        rows=rows,
        width=width,
        depth=depth,
        seconds=measurement.seconds,
        wall_seconds=measurement.wall_seconds,
        peak_memory_bytes=measurement.peak_memory_bytes,
        note=note,
        extra=measurement.extra,
    )


def measure_memory_table(
    config: BenchConfig, tracer=None
) -> list[SweepPoint]:
    """Table 3: peak memory for inference of the representative models."""
    points: list[SweepPoint] = []
    # The four columns of the paper's Table 3.
    variants = ("ModelJoin_CPU", "TF_CAPI_CPU", "TF_CPU", "ML-To-SQL")
    rows = config.table3_rows
    for kind, width, depth in TABLE3_MODELS:
        if kind == "dense":
            model = make_dense_model(width, depth, seed=width)
            work = _mltosql_dense_work(rows, width, depth, 4)
        else:
            model = make_lstm_model(
                width, time_steps=config.time_steps, seed=width
            )
            work = _mltosql_lstm_work(rows, width, config.time_steps)
        for name in variants:
            database = connect(
                parallelism=config.parallelism, tracer=tracer
            )
            if kind == "dense":
                dataset = load_iris_table(database, rows)
                env = BenchEnvironment(
                    database=database,
                    model=model,
                    fact_table="iris",
                    id_column="id",
                    input_columns=list(FEATURE_COLUMNS),
                )
                inputs = dataset.features
            else:
                series = load_windowed_series_table(
                    database, rows, time_steps=config.time_steps
                )
                _, inputs = series.windows()
                env = BenchEnvironment(
                    database=database,
                    model=model,
                    fact_table="sinus_windows",
                    id_column="id",
                    input_columns=[
                        f"x{step}"
                        for step in range(1, config.time_steps + 1)
                    ],
                )
            # Memory measurement tolerates somewhat slower runs: allow
            # ML-To-SQL three times the sweep work cap before skipping.
            relaxed = replace(
                config, mltosql_work_cap=config.mltosql_work_cap * 3
            )
            point = _run_cell(
                "table3",
                name,
                env,
                rows,
                width,
                depth,
                work=work,
                config=relaxed,
                verify_inputs=inputs,
            )
            points.append(point)
    return points


def geometric_midpoint(values: list[float]) -> float:
    """Geometric mean helper used by the qualitative classifier."""
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(value) for value in positive) / len(positive))
