"""Paper-style result rendering.

Produces, from sweep points, the same rows/series the paper reports:
per-model runtime series (Figures 8/9), the peak-memory table
(Table 3), and the qualitative comparison (Table 2) derived from the
measurements plus the approaches' inherent properties.
"""

from __future__ import annotations

from collections import defaultdict

from repro.bench.harness import SweepPoint, geometric_midpoint

#: inherent (not measured) properties, from the paper's §6.3 reasoning
_PORTABILITY = {
    "ML-To-SQL": "Good",  # plain SQL, any compliant engine
    "ModelJoin_CPU": "Bad",  # engine changes required
    "ModelJoin_GPU": "Bad",
    "TF_CPU": "Good",  # plain client Python
    "TF_GPU": "Good",
    "TF_CAPI_CPU": "Bad",  # runtime linked into the engine
    "TF_CAPI_GPU": "Bad",
    "UDF": "Medium",  # needs UDF support
}

_GENERALIZABILITY = {
    "ML-To-SQL": "Bad",  # only the reimplemented layer types
    "ModelJoin_CPU": "Bad",
    "ModelJoin_GPU": "Bad",
    "TF_CPU": "Good",  # full framework available
    "TF_GPU": "Good",
    "TF_CAPI_CPU": "Good",
    "TF_CAPI_GPU": "Good",
    "UDF": "Good",
}


def format_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_bytes(nbytes: int | None) -> str:
    if nbytes is None:
        return "--"
    if nbytes >= 1 << 30:
        return f"{nbytes / (1 << 30):.2f} GB"
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.1f} MB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.1f} KB"
    return f"{nbytes} B"


def _cells(points: list[SweepPoint]):
    """Group points into (width, depth) -> rows -> variant -> point."""
    grid: dict = defaultdict(lambda: defaultdict(dict))
    for point in points:
        grid[(point.width, point.depth)][point.rows][point.variant] = point
    return grid


def format_runtime_series(
    points: list[SweepPoint], title: str
) -> str:
    """Figure 8/9 as text: one block per model, one series per variant."""
    lines = [title, "=" * len(title)]
    grid = _cells(points)
    for (width, depth), by_rows in sorted(grid.items()):
        if any(point.experiment == "fig9" for row in by_rows.values() for point in row.values()):
            lines.append(f"\nModel: LSTM width={width}")
        else:
            lines.append(f"\nModel: dense width={width} depth={depth}")
        variants = sorted(
            {
                variant
                for row in by_rows.values()
                for variant in row.keys()
            }
        )
        header = ["rows".rjust(9)] + [
            variant.rjust(14) for variant in variants
        ]
        lines.append(" ".join(header))
        for rows in sorted(by_rows):
            row = [f"{rows}".rjust(9)]
            for variant in variants:
                point = by_rows[rows].get(variant)
                if point is None:
                    row.append("--".rjust(14))
                elif point.skipped:
                    row.append("skip".rjust(14))
                else:
                    row.append(format_seconds(point.seconds).rjust(14))
            lines.append(" ".join(row))
    skipped = [point for point in points if point.skipped]
    if skipped:
        lines.append("")
        lines.append(
            f"({len(skipped)} ML-To-SQL cells skipped by the work cap — "
            "the quadratic intermediate-result growth of §6.2.1)"
        )
    return "\n".join(lines)


def format_memory_table(points: list[SweepPoint], rows: int) -> str:
    """Table 3 as text."""
    title = f"Table 3 — peak memory for model inference of {rows} tuples"
    lines = [title, "=" * len(title)]
    variants = ("ModelJoin_CPU", "TF_CAPI_CPU", "TF_CPU", "ML-To-SQL")
    header = ["model".ljust(16)] + [name.rjust(14) for name in variants]
    lines.append(" ".join(header))
    by_model: dict = defaultdict(dict)
    for point in points:
        label = (
            f"LSTM({point.width})"
            if point.experiment == "table3" and point.depth == 1
            else f"Dense({point.width},{point.depth})"
        )
        by_model[label][point.variant] = point
    for label, by_variant in by_model.items():
        row = [label.ljust(16)]
        for variant in variants:
            point = by_variant.get(variant)
            if point is None or point.skipped:
                row.append("skip".rjust(14))
            else:
                row.append(format_bytes(point.peak_memory_bytes).rjust(14))
        lines.append(" ".join(row))
    return "\n".join(lines)


def _cell_ratios(
    points: list[SweepPoint],
    variant: str,
    value_of,
) -> tuple[list[float], bool]:
    """Per-cell slowdown ratios of *variant* against the cell's best.

    A cell is one (experiment, width, depth, rows) combination; the
    ratio is this variant's value divided by the cell minimum across
    variants.  Returns the ratios plus whether the variant skipped any
    cell (a skip counts against it — it could not run at all).
    """
    cells: dict = defaultdict(dict)
    for point in points:
        key = (point.experiment, point.width, point.depth, point.rows)
        cells[key][point.variant] = point
    ratios: list[float] = []
    skipped = False
    for by_variant in cells.values():
        mine = by_variant.get(variant)
        if mine is None:
            continue
        if mine.skipped:
            skipped = True
            continue
        values = [
            value_of(point)
            for point in by_variant.values()
            if not point.skipped and value_of(point)
        ]
        my_value = value_of(mine)
        if not values or not my_value:
            continue
        ratios.append(my_value / min(values))
    return ratios, skipped


def _classify_performance(
    points: list[SweepPoint], variant: str, large: bool
) -> str:
    """Good / Medium / Bad relative to the best variant, paper-style.

    "Small" / "large" selects the smallest / largest model width of
    the sweep, matching the paper's two performance rows.
    """
    widths = sorted({point.width for point in points})
    if not widths:
        return "--"
    selected = widths[-1] if large else widths[0]
    subset = [point for point in points if point.width == selected]
    ratios, skipped = _cell_ratios(
        subset, variant, lambda point: point.seconds
    )
    if not ratios:
        return "Bad" if skipped else "--"
    ratio = geometric_midpoint(ratios)
    if skipped or ratio > 12.0:
        return "Bad"
    if ratio <= 2.5:
        return "Good"
    return "Medium"


def _classify_memory(
    memory_points: list[SweepPoint], variant: str
) -> str:
    ratios, skipped = _cell_ratios(
        memory_points,
        variant,
        lambda point: float(point.peak_memory_bytes or 0),
    )
    if not ratios:
        return "Bad" if skipped else "--"
    ratio = geometric_midpoint(ratios)
    if skipped or ratio > 25.0:
        return "Bad"
    if ratio <= 4.0:
        return "Good"
    return "Medium"


#: Figure-8/9 legend name -> Table 2 column (the paper's Table 2 has
#: one column per approach, not per CPU/GPU lane)
_APPROACH_OF_VARIANT = {
    "ML-To-SQL": "ML-To-SQL",
    "ModelJoin_CPU": "ModelJoin",
    "ModelJoin_GPU": "ModelJoin",
    "TF_CAPI_CPU": "TF(C-API)",
    "TF_CAPI_GPU": "TF(C-API)",
    "TF_CPU": "TF(Python)",
    "TF_GPU": "TF(Python)",
    "UDF": "UDF",
    "UDF_per_tuple": "UDF",
}

_PORTABILITY.update(
    {
        "ModelJoin": "Bad",
        "TF(C-API)": "Bad",
        "TF(Python)": "Good",
    }
)
_GENERALIZABILITY.update(
    {
        "ModelJoin": "Bad",
        "TF(C-API)": "Good",
        "TF(Python)": "Good",
    }
)


def _merge_lanes(points: list[SweepPoint]) -> list[SweepPoint]:
    """Collapse CPU/GPU lanes into one point per approach and cell,
    keeping the better lane (the paper's "should be used whenever
    possible" reading of the GPU variants)."""
    best: dict = {}
    for point in points:
        approach = _APPROACH_OF_VARIANT.get(point.variant, point.variant)
        key = (
            point.experiment,
            approach,
            point.rows,
            point.width,
            point.depth,
        )
        current = best.get(key)
        merged = SweepPoint(
            experiment=point.experiment,
            variant=approach,
            rows=point.rows,
            width=point.width,
            depth=point.depth,
            seconds=point.seconds,
            wall_seconds=point.wall_seconds,
            peak_memory_bytes=point.peak_memory_bytes,
            skipped=point.skipped,
            note=point.note,
        )
        if current is None:
            best[key] = merged
        elif current.skipped and not merged.skipped:
            best[key] = merged
        elif (
            not merged.skipped
            and merged.seconds is not None
            and current.seconds is not None
            and merged.seconds < current.seconds
        ):
            best[key] = merged
    return list(best.values())


def format_qualitative_table(
    runtime_points: list[SweepPoint],
    memory_points: list[SweepPoint],
) -> str:
    """Table 2, with the performance/memory cells *derived from data*.

    CPU/GPU lanes are merged into one column per approach, like the
    paper's Table 2.  Portability and generalizability are inherent
    properties of the approaches (not measurable here) and reproduce
    the paper's §6.3 reasoning directly.
    """
    runtime_points = _merge_lanes(runtime_points)
    memory_points = _merge_lanes(memory_points)
    variants = sorted(
        {point.variant for point in runtime_points}
        | {point.variant for point in memory_points}
    )
    criteria = [
        "Performance (Small Models)",
        "Performance (Large Models)",
        "Memory Consumption",
        "Portability",
        "Generalizability",
    ]
    title = "Table 2 — qualitative comparison of ML inference approaches"
    lines = [title, "=" * len(title)]
    header = ["criterion".ljust(28)] + [
        variant.rjust(14) for variant in variants
    ]
    lines.append(" ".join(header))
    for criterion in criteria:
        row = [criterion.ljust(28)]
        for variant in variants:
            if criterion == "Performance (Small Models)":
                value = _classify_performance(
                    runtime_points, variant, large=False
                )
            elif criterion == "Performance (Large Models)":
                value = _classify_performance(
                    runtime_points, variant, large=True
                )
            elif criterion == "Memory Consumption":
                value = _classify_memory(memory_points, variant)
            elif criterion == "Portability":
                value = _PORTABILITY.get(variant, "--")
            else:
                value = _GENERALIZABILITY.get(variant, "--")
            row.append(value.rjust(14))
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_counter_summary(points: list[SweepPoint]) -> str:
    """Aggregate the engine's profile counters across sweep points.

    Surfaces the performance-layer observability: model-cache hits and
    misses, morsels executed (total and per worker), and the bytes of
    allocation the inference buffer arenas avoided.  Returns "" when no
    point carries counters (external variants, old recordings).
    """
    totals: dict[str, int] = defaultdict(int)
    for point in points:
        for name, value in point.extra.get("counters", {}).items():
            totals[name] += value
    if not totals:
        return ""
    title = "Engine counters (aggregated over the sweep)"
    lines = [title, "=" * len(title)]
    for name in sorted(totals):
        if name == "buffer-bytes-reused":
            rendered = format_bytes(totals[name])
        else:
            rendered = str(totals[name])
        lines.append(f"{name:<28} {rendered}")
    return "\n".join(lines)


def format_metrics_summary(points: list[SweepPoint]) -> str:
    """Engine-lifetime metrics aggregated per variant.

    Each sweep cell runs on a fresh engine, so a cell's metrics
    snapshot covers the queries that cell issued; the summary reports
    the per-variant mean of the flattened metric values — the latency
    percentiles (``query.latency.p50``/``p95``/``p99``), cache hit
    ratio and morsel queue-wait percentiles of a typical cell.  Returns
    "" when no point carries metrics.
    """
    by_variant: dict[str, dict[str, list[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for point in points:
        for name, value in point.extra.get("metrics", {}).items():
            by_variant[point.variant][name].append(float(value))
    if not by_variant:
        return ""
    shown = (
        "query.latency.p50",
        "query.latency.p95",
        "query.latency.p99",
        "modeljoin.build_seconds.p50",
        "morsel.queue_wait.p95",
        "cache.hit_ratio",
    )
    title = "Engine metrics (mean per variant over the sweep's cells)"
    lines = [title, "=" * len(title)]
    header = ["variant".ljust(16)] + [
        name.rjust(28) for name in shown
    ]
    lines.append(" ".join(header))
    for variant in sorted(by_variant):
        values = by_variant[variant]
        row = [variant.ljust(16)]
        for name in shown:
            samples = values.get(name)
            if not samples:
                row.append("--".rjust(28))
            elif name == "cache.hit_ratio":
                mean = sum(samples) / len(samples)
                row.append(f"{mean:.2f}".rjust(28))
            else:
                mean = sum(samples) / len(samples)
                row.append(format_seconds(mean).rjust(28))
        lines.append(" ".join(row))
    return "\n".join(lines)


def points_to_csv(points: list[SweepPoint]) -> str:
    """Machine-readable dump of a sweep."""
    lines = [
        "experiment,variant,rows,width,depth,seconds,wall_seconds,"
        "peak_memory_bytes,skipped,note,counters,metrics"
    ]
    for point in points:
        counters = point.extra.get("counters", {})
        rendered_counters = ";".join(
            f"{name}={counters[name]}" for name in sorted(counters)
        )
        metrics = point.extra.get("metrics", {})
        rendered_metrics = ";".join(
            f"{name}={metrics[name]:.6g}" for name in sorted(metrics)
        )
        lines.append(
            ",".join(
                [
                    point.experiment,
                    point.variant,
                    str(point.rows),
                    str(point.width),
                    str(point.depth),
                    "" if point.seconds is None else f"{point.seconds:.6f}",
                    ""
                    if point.wall_seconds is None
                    else f"{point.wall_seconds:.6f}",
                    ""
                    if point.peak_memory_bytes is None
                    else str(point.peak_memory_bytes),
                    str(point.skipped),
                    '"' + point.note.replace('"', "'") + '"',
                    '"' + rendered_counters + '"',
                    '"' + rendered_metrics + '"',
                ]
            )
        )
    return "\n".join(lines)
