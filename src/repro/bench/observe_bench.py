"""Observability gate: system-schema smoke and query-log overhead.

The introspection layer (docs/OBSERVABILITY.md) must be free enough to
leave on by default, and the ``system.*`` virtual tables must actually
answer.  This module turns both requirements into a benchmark with a
pass/fail verdict:

* **Overhead** — the PR1 serving workload (a warm dense ``MODEL JOIN``
  over the iris grid, issued as SQL so it takes the full engine path
  that collection instruments) runs on two identically configured
  engines, one with query-log collection enabled and one with
  ``collect_query_log=False``; the repeats are interleaved and the gate
  compares the *best* run of each arm (noise is strictly additive, so
  the minima estimate the true cost — the same reasoning as
  ``timeit``).  It fails when collection costs more than
  :data:`OVERHEAD_THRESHOLD` (5%).

* **Smoke** — a persistent database is exercised (DDL, inserts,
  checkpoint, reopen, serial + filtered queries) and every ``system.*``
  table is then read through the standard SQL path; the gate fails if
  any comes back empty or the top-5-slowest ranking query errors.

``python -m repro.bench observe --json BENCH_pr7.json`` writes the
combined report; ``--check`` makes the verdict the exit code.
"""

from __future__ import annotations

import json
import shutil
import statistics
import tempfile
import time

from repro.bench.harness import BenchConfig
from repro.core.attach import connect
from repro.core.registry import publish_model
from repro.db.engine import Database
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

#: maximum tolerated slowdown of the collecting run (fraction)
OVERHEAD_THRESHOLD = 0.05

#: every virtual table the smoke run must be able to read, with True
#: where a row is required (registries that may legitimately be empty
#: on a fresh engine only need to answer)
SMOKE_TABLES = (
    ("system.metrics", True),
    ("system.queries", True),
    ("system.active_queries", True),  # a query always observes itself
    ("system.buffer_pool", True),
    ("system.kernel_cache", True),
    ("system.model_cache", True),
    ("system.breakers", True),
    ("system.storage_blocks", True),
    ("system.tables", True),
    ("system.columns", True),
)


#: the serving statement of the overhead gate — a SQL MODEL JOIN so
#: the query takes the full engine path that collection instruments
SERVING_SQL = (
    "SELECT id, prediction_0 FROM iris MODEL JOIN observe_model "
    f"USING ({', '.join(FEATURE_COLUMNS)})"
)


def _setup(rows: int, width: int, depth: int, collect: bool) -> Database:
    database = connect(collect_query_log=collect)
    load_iris_table(database, rows)
    model = make_dense_model(width, depth, input_width=4, seed=width)
    publish_model(database, "observe_model", model, replace=True)
    return database


def _timed_run(database: Database) -> float:
    started = time.perf_counter()
    database.execute(SERVING_SQL)
    return time.perf_counter() - started


def run_overhead_gate(
    rows: int = 10_000,
    width: int = 64,
    depth: int = 4,
    repeats: int = 7,
) -> dict:
    """Best collecting-vs-disabled latency of the serving workload."""
    off_db = _setup(rows, width, depth, collect=False)
    on_db = _setup(rows, width, depth, collect=True)
    try:
        _timed_run(off_db)  # warm-up: model build + caches
        _timed_run(on_db)
        disabled: list[float] = []
        enabled: list[float] = []
        for _ in range(repeats):
            disabled.append(_timed_run(off_db))
            enabled.append(_timed_run(on_db))
        logged = len(on_db.query_log)
    finally:
        off_db.close()
        on_db.close()
    disabled_best = min(disabled)
    enabled_best = min(enabled)
    overhead = (
        enabled_best / disabled_best - 1.0 if disabled_best > 0 else 0.0
    )
    return {
        "workload": {
            "rows": rows,
            "width": width,
            "depth": depth,
            "repeats": repeats,
        },
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_best_seconds": disabled_best,
        "enabled_best_seconds": enabled_best,
        "disabled_median_seconds": statistics.median(disabled),
        "enabled_median_seconds": statistics.median(enabled),
        "logged_queries": logged,
        "overhead_fraction": overhead,
        "threshold": OVERHEAD_THRESHOLD,
        "ok": overhead <= OVERHEAD_THRESHOLD,
    }


def run_system_schema_smoke() -> dict:
    """Exercise a persistent engine and read every ``system.*`` table."""
    root = tempfile.mkdtemp(prefix="repro-observe-")
    counts: dict[str, int] = {}
    errors: list[str] = []
    try:
        database = connect(parallelism=2, path=root)
        database.execute(
            "CREATE TABLE readings (sensor INTEGER, value DOUBLE) "
            "PARTITION BY (sensor) PARTITIONS 2"
        )
        database.execute(
            "INSERT INTO readings VALUES "
            + ", ".join(f"({i % 16}, {i * 0.25})" for i in range(512))
        )
        database.checkpoint()
        database.close()
        # Reopen so the scans below hit real disk blocks (codecs and
        # zone maps in system.storage_blocks) and the restored log.
        database = connect(parallelism=2, path=root)
        database.execute("SELECT sensor, value FROM readings WHERE value > 8.0")
        database.execute(
            "SELECT sensor, value FROM readings WHERE sensor < 8",
            parallel=True,
        )
        ranking = database.execute(
            "SELECT sql, latency_seconds FROM system.queries "
            "ORDER BY latency_seconds DESC LIMIT 5"
        )
        if ranking.row_count == 0:
            errors.append("top-5-slowest ranking returned no rows")
        explain = database.explain("SELECT * FROM system.queries")
        if "system.queries" not in explain:
            errors.append("EXPLAIN over a system scan missing the table")
        for name, required in SMOKE_TABLES:
            try:
                result = database.execute(f"SELECT * FROM {name}")
            except Exception as error:  # noqa: BLE001 - recorded verbatim
                errors.append(f"{name}: {type(error).__name__}: {error}")
                continue
            counts[name] = result.row_count
            if required and result.row_count == 0:
                errors.append(f"{name} is empty")
        database.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"row_counts": counts, "errors": errors, "ok": not errors}


def run_observe_bench(config: BenchConfig) -> dict:
    """The full observability benchmark: smoke plus overhead gate."""
    if config.preset == "smoke":
        rows, width, depth, repeats = 2_000, 16, 2, 3
    else:
        rows, width, depth, repeats = 10_000, 64, 4, 7
    smoke = run_system_schema_smoke()
    overhead = run_overhead_gate(
        rows=rows, width=width, depth=depth, repeats=repeats
    )
    return {
        "experiment": "observe",
        "preset": config.preset,
        "smoke": smoke,
        "overhead": overhead,
        "ok": smoke["ok"] and overhead["ok"],
    }


def format_observe_report(report: dict) -> str:
    """Human-readable summary of :func:`run_observe_bench`."""
    from repro.bench.reporting import format_seconds

    overhead = report["overhead"]
    smoke = report["smoke"]
    title = (
        "Observability — system schema smoke and query-log overhead "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title)]
    lines.append(
        "system tables: "
        + "  ".join(
            f"{name.split('.', 1)[1]}={count}"
            for name, count in sorted(smoke["row_counts"].items())
        )
    )
    for error in smoke["errors"]:
        lines.append(f"smoke FAILURE: {error}")
    lines.append(
        f"collection off best: "
        f"{format_seconds(overhead['disabled_best_seconds'])}   "
        f"on best: {format_seconds(overhead['enabled_best_seconds'])}   "
        f"overhead: {overhead['overhead_fraction'] * 100:+.2f}% "
        f"(threshold {overhead['threshold'] * 100:.0f}%) "
        f"-> {'PASS' if overhead['ok'] else 'FAIL'}"
    )
    lines.append(
        f"queries logged during the gate: {overhead['logged_queries']}"
    )
    lines.append(f"\nVerdict: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
