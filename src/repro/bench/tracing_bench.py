"""Tracing-overhead gate and trace-evidence run.

Observability must not distort the measurements it exists to explain,
so this module turns that requirement into a benchmark with a pass/fail
verdict:

* **Overhead** — the dense-grid ModelJoin workload runs with the tracer
  disabled and enabled, interleaved over several repeats; the gate
  compares the *best* run of each arm (scheduler jitter only ever adds
  time, so the minimum is the noise-robust estimator — the same
  reasoning as ``timeit``) and fails when the enabled best exceeds the
  disabled best by more than :data:`OVERHEAD_THRESHOLD` (5%).

* **Evidence** — one partition-parallel traced query is exported as
  Chrome-trace JSON and checked to contain every level of the span
  hierarchy: the query span, the ModelJoin build and inference phase
  spans, per-operator spans, per-worker morsel spans and device kernel
  spans.

``python -m repro.bench tracing --json BENCH_pr2.json`` writes the
combined report; ``--check-overhead`` makes the overhead verdict the
exit code (left off in CI, where shared runners make timing flaky).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.bench.harness import BenchConfig
from repro.core.attach import connect
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.db.tracing import flatten_metrics
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

#: maximum tolerated slowdown of the traced run (fraction)
OVERHEAD_THRESHOLD = 0.05

#: span levels the exported trace must contain, as (category, names)
#: pairs — at least one event of each category, and when names are
#: given at least one event with one of those names
REQUIRED_SPAN_LEVELS = (
    ("query", ()),
    ("phase", ("modeljoin-build",)),
    ("phase", ("modeljoin-infer",)),
    ("operator", ()),
    ("morsel", ("morsel",)),
    ("kernel", ("gemm",)),
)


def _setup(rows: int, width: int, depth: int, parallelism: int):
    database = connect(parallelism=parallelism)
    load_iris_table(database, rows, num_partitions=parallelism)
    model = make_dense_model(width, depth, input_width=4, seed=width)
    publish_model(
        database,
        "tracing_model",
        model,
        model_table_partitions=parallelism,
        replace=True,
    )
    runner = NativeModelJoin(database, "tracing_model")
    return database, runner


def _timed_run(runner: NativeModelJoin, parallel: bool) -> float:
    started = time.perf_counter()
    runner.predict("iris", "id", list(FEATURE_COLUMNS), parallel=parallel)
    return time.perf_counter() - started


def run_overhead_gate(
    rows: int = 10_000,
    width: int = 64,
    depth: int = 4,
    repeats: int = 7,
    parallelism: int = 1,
) -> dict:
    """Best enabled-vs-disabled latency of the dense ModelJoin.

    The repeats are interleaved (disabled, enabled, disabled, ...) so
    clock drift and cache warmth hit both arms equally; a warm-up run
    first fills the model build cache for both.  The gate compares the
    minimum of each arm: noise is strictly additive, so the minima
    estimate the true cost of each configuration.
    """
    parallel = parallelism > 1
    database, runner = _setup(rows, width, depth, parallelism)
    try:
        _timed_run(runner, parallel)  # warm-up: model build + caches
        disabled: list[float] = []
        enabled: list[float] = []
        for _ in range(repeats):
            database.disable_tracing()
            disabled.append(_timed_run(runner, parallel))
            database.enable_tracing()
            enabled.append(_timed_run(runner, parallel))
            database.tracer.clear()
        database.disable_tracing()
    finally:
        database.close()
    disabled_best = min(disabled)
    enabled_best = min(enabled)
    overhead = (
        enabled_best / disabled_best - 1.0 if disabled_best > 0 else 0.0
    )
    return {
        "workload": {
            "rows": rows,
            "width": width,
            "depth": depth,
            "repeats": repeats,
            "parallelism": parallelism,
        },
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_best_seconds": disabled_best,
        "enabled_best_seconds": enabled_best,
        "disabled_median_seconds": statistics.median(disabled),
        "enabled_median_seconds": statistics.median(enabled),
        "overhead_fraction": overhead,
        "threshold": OVERHEAD_THRESHOLD,
        "ok": overhead <= OVERHEAD_THRESHOLD,
    }


def check_span_levels(trace: dict) -> dict:
    """Verify a Chrome-trace document contains the full span hierarchy."""
    events = [
        event
        for event in trace.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    categories: dict[str, int] = {}
    names_by_category: dict[str, set] = {}
    for event in events:
        category = event.get("cat", "")
        categories[category] = categories.get(category, 0) + 1
        names_by_category.setdefault(category, set()).add(event["name"])
    missing: list[str] = []
    for category, names in REQUIRED_SPAN_LEVELS:
        present = names_by_category.get(category, set())
        if not present:
            missing.append(category)
        elif names and not present.intersection(names):
            missing.append(f"{category}:{'|'.join(names)}")
    return {
        "events": len(events),
        "categories": categories,
        "span_names": sorted(
            {event["name"] for event in events}
        ),
        "missing_levels": missing,
        "ok": not missing,
    }


def run_trace_evidence(
    trace_path: str,
    rows: int = 10_000,
    width: int = 64,
    depth: int = 4,
    parallelism: int = 4,
) -> dict:
    """One traced parallel ModelJoin query, exported and validated."""
    database, runner = _setup(rows, width, depth, parallelism)
    try:
        database.enable_tracing()
        runner.predict(
            "iris", "id", list(FEATURE_COLUMNS), parallel=parallelism > 1
        )
        exported = database.export_trace(trace_path)
        metrics = flatten_metrics(database.metrics.snapshot())
    finally:
        database.close()
    with open(trace_path) as handle:
        trace = json.load(handle)
    levels = check_span_levels(trace)
    levels["path"] = trace_path
    levels["exported_events"] = exported
    return {"trace": levels, "metrics": metrics}


def run_tracing_bench(
    config: BenchConfig, trace_path: str = "results/trace_evidence.json"
) -> dict:
    """The full tracing benchmark: overhead gate plus trace evidence."""
    if config.preset == "smoke":
        rows, width, depth, repeats = 2_000, 16, 2, 3
    else:
        # The width-256 dense-grid cell: large enough that the ~2us
        # per-launch span cost amortizes against real kernel work,
        # small enough that 2 * repeats runs stay interactive.
        rows, width, depth, repeats = 10_000, 256, 4, 7
    overhead = run_overhead_gate(
        rows=rows, width=width, depth=depth, repeats=repeats
    )
    evidence = run_trace_evidence(
        trace_path,
        rows=rows,
        width=width,
        depth=depth,
        parallelism=config.parallelism,
    )
    return {
        "experiment": "tracing",
        "preset": config.preset,
        "overhead": overhead,
        "trace": evidence["trace"],
        "metrics": evidence["metrics"],
        "ok": overhead["ok"] and evidence["trace"]["ok"],
    }


def format_tracing_report(report: dict) -> str:
    """Human-readable summary of :func:`run_tracing_bench`."""
    from repro.bench.reporting import format_seconds

    overhead = report["overhead"]
    trace = report["trace"]
    title = f"Tracing — overhead gate and span evidence (preset {report['preset']})"
    lines = [title, "=" * len(title)]
    lines.append(
        f"disabled best: {format_seconds(overhead['disabled_best_seconds'])}   "
        f"enabled best: {format_seconds(overhead['enabled_best_seconds'])}   "
        f"overhead: {overhead['overhead_fraction'] * 100:+.2f}% "
        f"(threshold {overhead['threshold'] * 100:.0f}%) "
        f"-> {'PASS' if overhead['ok'] else 'FAIL'}"
    )
    lines.append(
        f"trace: {trace['events']} span events in {trace['path']} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(trace['categories'].items()))})"
    )
    if trace["missing_levels"]:
        lines.append(f"missing span levels: {trace['missing_levels']}")
    else:
        lines.append(
            "span hierarchy complete: query, build/infer phases, "
            "operators, per-worker morsels, device kernels"
        )
    latency_keys = [
        key for key in sorted(report["metrics"]) if key.startswith("query.latency")
    ]
    if latency_keys:
        lines.append(
            "query.latency: "
            + "  ".join(
                f"{key.rsplit('.', 1)[1]}="
                f"{format_seconds(report['metrics'][key])}"
                for key in latency_keys
                if key.rsplit(".", 1)[1] != "count"
            )
        )
    lines.append(f"\nVerdict: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
