"""The eight evaluated approaches behind one interface.

Variant names match the legend of the paper's Figures 8 and 9:
``ModelJoin_CPU``, ``ModelJoin_GPU``, ``TF_CAPI_CPU``, ``TF_CAPI_GPU``,
``TF_CPU``, ``TF_GPU``, ``UDF`` and ``ML-To-SQL``.

Timing rules (DESIGN.md Section 6): CPU variants report wall-clock;
GPU variants report wall-clock with the measured kernel time swapped
for the simulated device's modeled time.  Memory: in-engine variants
report the engine accountant's peak; the external baseline reports the
client process's traced allocation peak.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from repro.core.client.external import ExternalInference
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.ml_to_sql.representation import MlToSqlOptions
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.runtime_api.runner import RuntimeApiModelJoin
from repro.core.udf_integration.inference_udf import UdfModelJoin
from repro.db.engine import Database
from repro.db.tracing import flatten_metrics
from repro.device.gpu import SimulatedGpu
from repro.device.host import HostDevice
from repro.errors import ModelJoinError
from repro.nn.model import Sequential

ALL_VARIANT_NAMES = (
    "ModelJoin_CPU",
    "ModelJoin_GPU",
    "TF_CAPI_CPU",
    "TF_CAPI_GPU",
    "TF_CPU",
    "TF_GPU",
    "UDF",
    "ML-To-SQL",
)

#: optimizer variant name (repro.db.plan.physical.ALL_VARIANTS) ->
#: Figure-8/9 legend name used by this module and the bench output.
VARIANT_LEGEND = {
    "native-cpu": "ModelJoin_CPU",
    "native-gpu": "ModelJoin_GPU",
    "runtime-api": "TF_CAPI_CPU",
    "udf": "UDF",
    "ml-to-sql": "ML-To-SQL",
    "external": "TF_CPU",
}

#: legend name -> optimizer variant name (GPU legends collapse onto the
#: same optimizer variant as their CPU twin where the optimizer does
#: not distinguish them).
LEGEND_VARIANT = {
    **{legend: name for name, legend in VARIANT_LEGEND.items()},
    "TF_CAPI_GPU": "runtime-api",
    "TF_GPU": "external",
}


@dataclass
class RunMeasurement:
    """One (variant, workload) measurement."""

    variant: str
    seconds: float
    wall_seconds: float
    peak_memory_bytes: int = 0
    rows: int = 0
    predictions: np.ndarray | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class BenchEnvironment:
    """Everything a variant needs to run one workload."""

    database: Database
    model: Sequential
    fact_table: str
    id_column: str
    input_columns: list[str]
    parallel: bool = False
    keep_predictions: bool = False
    model_name: str = "bench_model"


class Variant:
    """Base class: ``prepare`` once per environment, ``run`` repeatedly."""

    name = "abstract"

    def prepare(self, env: BenchEnvironment) -> None:
        """Load model tables / register UDFs — not part of the timing."""

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        raise NotImplementedError


class _NativeVariant(Variant):
    def __init__(self, gpu: bool):
        self.gpu = gpu
        self.name = "ModelJoin_GPU" if gpu else "ModelJoin_CPU"
        self._runner: NativeModelJoin | None = None

    def prepare(self, env: BenchEnvironment) -> None:
        partitions = (
            env.database.parallelism if env.parallel else 1
        )
        publish_model(
            env.database,
            env.model_name,
            env.model,
            model_table_partitions=partitions,
            replace=True,
        )
        device = SimulatedGpu() if self.gpu else HostDevice()
        self._runner = NativeModelJoin(
            env.database, env.model_name, device=device
        )

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        predictions = self._runner.predict(
            env.fact_table,
            env.id_column,
            env.input_columns,
            parallel=env.parallel,
        )
        profile = self._runner.last_profile
        return RunMeasurement(
            variant=self.name,
            seconds=self._runner.last_seconds,
            wall_seconds=profile.wall_seconds,
            peak_memory_bytes=profile.peak_memory_bytes,
            rows=profile.rows_returned,
            predictions=predictions if env.keep_predictions else None,
            extra={
                "phases": dict(profile.stopwatch.phases),
                "counters": profile.counters.snapshot(),
                "metrics": flatten_metrics(
                    env.database.metrics.snapshot()
                ),
            },
        )


class _RuntimeApiVariant(Variant):
    def __init__(self, gpu: bool):
        self.gpu = gpu
        self.name = "TF_CAPI_GPU" if gpu else "TF_CAPI_CPU"
        self._runner: RuntimeApiModelJoin | None = None

    def prepare(self, env: BenchEnvironment) -> None:
        device = SimulatedGpu() if self.gpu else HostDevice()
        self._runner = RuntimeApiModelJoin(
            env.database, env.model, device=device
        )

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        predictions = self._runner.predict(
            env.fact_table,
            env.id_column,
            env.input_columns,
            parallel=env.parallel,
        )
        profile = self._runner.last_profile
        return RunMeasurement(
            variant=self.name,
            seconds=self._runner.last_seconds,
            wall_seconds=profile.wall_seconds,
            peak_memory_bytes=profile.peak_memory_bytes,
            rows=profile.rows_returned,
            predictions=predictions if env.keep_predictions else None,
            extra={
                "phases": dict(profile.stopwatch.phases),
                "counters": profile.counters.snapshot(),
                "metrics": flatten_metrics(
                    env.database.metrics.snapshot()
                ),
            },
        )


class _ExternalVariant(Variant):
    def __init__(self, gpu: bool):
        self.gpu = gpu
        self.name = "TF_GPU" if gpu else "TF_CPU"
        self._runner: ExternalInference | None = None

    def prepare(self, env: BenchEnvironment) -> None:
        device = SimulatedGpu() if self.gpu else None
        self._runner = ExternalInference(
            env.database, env.model, device=device
        )

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        tracemalloc.start()
        started = time.perf_counter()
        report = self._runner.run(
            env.fact_table, env.id_column, env.input_columns
        )
        wall = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return RunMeasurement(
            variant=self.name,
            seconds=report.total_seconds,
            wall_seconds=wall,
            peak_memory_bytes=peak,
            rows=len(report.predictions),
            predictions=(
                report.predictions if env.keep_predictions else None
            ),
            extra={
                "fetch_seconds": report.fetch_seconds,
                "inference_seconds": report.inference_seconds,
                "bytes_on_wire": report.transfer.bytes_on_wire,
            },
        )


class _UdfVariant(Variant):
    name = "UDF"

    def __init__(self, vectorized: bool = True, marshal: bool = True):
        self.vectorized = vectorized
        self.marshal = marshal
        if not vectorized:
            self.name = "UDF_per_tuple"
        self._runner: UdfModelJoin | None = None

    def prepare(self, env: BenchEnvironment) -> None:
        self._runner = UdfModelJoin(
            env.database,
            env.model,
            name=f"predict_{env.model_name}",
            vectorized=self.vectorized,
            marshal=self.marshal,
        )

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        predictions = self._runner.predict(
            env.fact_table,
            env.id_column,
            env.input_columns,
            parallel=env.parallel,
        )
        profile = env.database.last_profile
        return RunMeasurement(
            variant=self.name,
            seconds=profile.wall_seconds,
            wall_seconds=profile.wall_seconds,
            peak_memory_bytes=profile.peak_memory_bytes,
            rows=profile.rows_returned,
            predictions=predictions if env.keep_predictions else None,
            extra={
                "udf_calls": sum(
                    udf.statistics.calls for udf in self._runner.udfs
                )
            },
        )


class _MlToSqlVariant(Variant):
    name = "ML-To-SQL"

    def __init__(self, options: MlToSqlOptions | None = None):
        self.options = options
        self._runner: MlToSqlModelJoin | None = None

    def prepare(self, env: BenchEnvironment) -> None:
        self._runner = MlToSqlModelJoin(
            env.database,
            env.model,
            options=self.options,
            model_table=f"{env.model_name}_mlsql",
        )

    def run(self, env: BenchEnvironment) -> RunMeasurement:
        predictions = self._runner.predict(
            env.fact_table,
            env.id_column,
            env.input_columns,
            parallel=env.parallel,
        )
        profile = env.database.last_profile
        return RunMeasurement(
            variant=self.name,
            seconds=profile.wall_seconds,
            wall_seconds=profile.wall_seconds,
            peak_memory_bytes=profile.peak_memory_bytes,
            rows=profile.rows_returned,
            predictions=predictions if env.keep_predictions else None,
        )


def make_variant(name: str, **kwargs) -> Variant:
    """Instantiate a variant by its Figure-8/9 legend name."""
    factories = {
        "ModelJoin_CPU": lambda: _NativeVariant(gpu=False),
        "ModelJoin_GPU": lambda: _NativeVariant(gpu=True),
        "TF_CAPI_CPU": lambda: _RuntimeApiVariant(gpu=False),
        "TF_CAPI_GPU": lambda: _RuntimeApiVariant(gpu=True),
        "TF_CPU": lambda: _ExternalVariant(gpu=False),
        "TF_GPU": lambda: _ExternalVariant(gpu=True),
        "UDF": lambda: _UdfVariant(**kwargs),
        "UDF_per_tuple": lambda: _UdfVariant(vectorized=False),
        "ML-To-SQL": lambda: _MlToSqlVariant(**kwargs),
    }
    factory = factories.get(name)
    if factory is None:
        raise ModelJoinError(
            f"unknown variant {name!r}; choose from {ALL_VARIANT_NAMES}"
        )
    return factory()
