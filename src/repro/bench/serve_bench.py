"""Serving gate: sustained concurrency, overload shedding, chaos.

Three phases against one persistent database behind a
:class:`repro.db.serve.Server`, each with a pass/fail verdict
(``python -m repro.bench serve --check`` makes it the exit code):

* **Steady state** — N client threads run a mixed OLAP / ``MODEL
  JOIN`` workload through their own sessions while a writer session
  appends rows and publishes checkpoint generations.  Every result is
  compared bit-exact against its per-client reference answer (the
  writer only touches a group no reader queries, so any deviation is
  cross-session bleed or a torn snapshot), and the gate requires zero
  errors plus a bounded p99 (``<= max(1s, 20x median)`` — a relative
  bound so slow CI machines do not flake it).

* **Overload** — a burst of 2x the admission-queue capacity per
  dispatcher is submitted at once.  The gate requires every future to
  resolve (shed queries fail fast with ``QueryRejectedError`` — none
  may hang), every completed query to be bit-exact and within its
  deadline, and a non-zero measured shed rate (the queue actually
  saturated).

* **Chaos** — the same workload under ``REPRO_FAULTS``-style injection
  (10% on ``serve.admit`` and ``io.block_read``, 5% on
  ``worker.task``).  Faulted admissions must surface as immediate
  rejections; every admitted query must still complete bit-exact (the
  reader retry layer and pipeline retries absorb the rest).

The report lands in ``BENCH_pr8.json``.
"""

from __future__ import annotations

import json
import shutil
import statistics
import tempfile
import threading
import time

import numpy as np

from repro.bench.harness import BenchConfig
from repro.core.attach import connect
from repro.core.registry import publish_model
from repro.db import faults
from repro.db.serve import Server
from repro.errors import QueryRejectedError
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

#: p99 must stay under max(P99_FLOOR_SECONDS, P99_MEDIAN_FACTOR * p50)
P99_FLOOR_SECONDS = 1.0
P99_MEDIAN_FACTOR = 20.0

#: generous per-query deadline: hitting it means a hang, not load
DEADLINE_SECONDS = 30.0

MODELJOIN_SQL = (
    "SELECT id, prediction_0 FROM iris MODEL JOIN serve_model "
    f"USING ({', '.join(FEATURE_COLUMNS)})"
)


def _olap_sql(group: int) -> str:
    return (
        "SELECT grp, COUNT(*), SUM(val) FROM events "
        f"WHERE grp = {group} GROUP BY grp"
    )


def _setup(root: str, rows_per_group: int, iris_rows: int, width: int):
    database = connect(parallelism=2, path=root)
    database.execute(
        "CREATE TABLE events (id INTEGER, grp INTEGER, val DOUBLE)"
    )
    values = ", ".join(
        f"({index}, {index % 4}, {index * 0.5})"
        for index in range(rows_per_group * 4)
    )
    database.execute(f"INSERT INTO events VALUES {values}")
    load_iris_table(database, iris_rows)
    model = make_dense_model(width, 2, input_width=4, seed=width)
    publish_model(database, "serve_model", model, replace=True)
    database.checkpoint()
    references = {
        group: database.execute(_olap_sql(group)).rows
        for group in range(4)
    }
    modeljoin_reference = database.execute(MODELJOIN_SQL).column(
        "prediction_0"
    )
    return database, references, modeljoin_reference


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.array(latencies), q))


class _ClientStats:
    """Thread-safe tally shared by the client threads of one phase."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: list[float] = []
        self.completed = 0
        self.rejected = 0
        self.errors: list[str] = []

    def record(self, seconds: float) -> None:
        with self.lock:
            self.latencies.append(seconds)
            self.completed += 1

    def record_rejection(self) -> None:
        with self.lock:
            self.rejected += 1

    def record_error(self, message: str) -> None:
        with self.lock:
            self.errors.append(message)


def _run_clients(
    server: Server,
    references: dict,
    modeljoin_reference,
    clients: int,
    queries_per_client: int,
    modeljoin_share: int,
) -> tuple[_ClientStats, float]:
    """N threads, each its own session, mixed OLAP/ModelJoin."""
    stats = _ClientStats()

    def client(index: int) -> None:
        session = server.open_session(
            tenant=f"t{index % 3}",
            priority=index % 3,
            timeout_seconds=DEADLINE_SECONDS,
        )
        try:
            for turn in range(queries_per_client):
                modeljoin = (
                    modeljoin_share > 0
                    and turn % modeljoin_share == 0
                )
                group = (index + turn) % 4
                sql = MODELJOIN_SQL if modeljoin else _olap_sql(group)
                started = time.perf_counter()
                try:
                    result = session.execute(sql)
                except QueryRejectedError:
                    stats.record_rejection()
                    continue
                except Exception as error:  # noqa: BLE001 - verdict data
                    stats.record_error(
                        f"client {index}: {type(error).__name__}: {error}"
                    )
                    continue
                stats.record(time.perf_counter() - started)
                if modeljoin:
                    exact = np.array_equal(
                        result.column("prediction_0"),
                        modeljoin_reference,
                    )
                else:
                    exact = result.rows == references[group]
                if not exact:
                    stats.record_error(
                        f"client {index}: BLEED on {sql!r}"
                    )
        finally:
            session.close()

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats, time.perf_counter() - started


def run_steady_phase(
    server: Server,
    database,
    references: dict,
    modeljoin_reference,
    clients: int,
    queries_per_client: int,
) -> dict:
    """Mixed workload under concurrent writer churn; zero-bleed gate."""
    stop = threading.Event()
    writer_errors: list[str] = []

    def writer() -> None:
        # Appends land in a group no reader queries and each publish
        # swaps the generation the readers' snapshots pin.
        session = server.open_session(tenant="writer", priority=9)
        try:
            sequence = 0
            while not stop.is_set():
                session.execute(
                    "INSERT INTO events VALUES "
                    f"({100_000 + sequence}, 999, 1.0)"
                )
                database.checkpoint()
                sequence += 1
                time.sleep(0.01)
        except Exception as error:  # noqa: BLE001 - verdict data
            writer_errors.append(f"writer: {type(error).__name__}: {error}")
        finally:
            session.close()

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    try:
        stats, wall = _run_clients(
            server,
            references,
            modeljoin_reference,
            clients,
            queries_per_client,
            modeljoin_share=4,
        )
    finally:
        stop.set()
        writer_thread.join()
    p50 = _percentile(stats.latencies, 50)
    p99 = _percentile(stats.latencies, 99)
    p99_bound = max(P99_FLOOR_SECONDS, P99_MEDIAN_FACTOR * p50)
    errors = stats.errors + writer_errors
    storage = database.storage
    return {
        "clients": clients,
        "queries_per_client": queries_per_client,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "wall_seconds": wall,
        "qps": stats.completed / wall if wall > 0 else 0.0,
        "p50_seconds": p50,
        "p99_seconds": p99,
        "p99_bound_seconds": p99_bound,
        "pinned_generations_after": storage.pinned_generations(),
        "retired_generations_after": storage.retired_generations(),
        "errors": errors,
        "ok": (
            not errors
            and stats.completed > 0
            and p99 <= p99_bound
            # every snapshot released its pins; nothing leaks
            and storage.pinned_generations() == 0
            and storage.retired_generations() == 0
        ),
    }


def run_overload_phase(
    server: Server, references: dict, burst_factor: int = 2
) -> dict:
    """Burst 2x queue capacity per dispatcher; nothing may hang."""
    capacity = server.queue.capacity
    burst = burst_factor * capacity * len(server._dispatchers)
    sessions = [
        server.open_session(
            tenant=f"burst{index % 2}",
            priority=index % 3,
            timeout_seconds=DEADLINE_SECONDS,
        )
        for index in range(4)
    ]
    futures = []
    rejected_at_submit = 0
    started = time.perf_counter()
    for index in range(burst):
        group = index % 4
        try:
            futures.append(
                (group, sessions[index % 4].submit(_olap_sql(group)))
            )
        except QueryRejectedError:
            rejected_at_submit += 1
    completed = 0
    rejected = rejected_at_submit
    hung = 0
    errors: list[str] = []
    for group, future in futures:
        try:
            result = future.wait(timeout=DEADLINE_SECONDS * 2)
        except TimeoutError:
            hung += 1
            continue
        except QueryRejectedError:
            rejected += 1
            continue
        except Exception as error:  # noqa: BLE001 - verdict data
            errors.append(f"{type(error).__name__}: {error}")
            continue
        completed += 1
        if result.rows != references[group]:
            errors.append(f"BLEED in overload burst (grp {group})")
    wall = time.perf_counter() - started
    for session in sessions:
        session.close()
    shed_rate = rejected / burst if burst else 0.0
    return {
        "queue_capacity": capacity,
        "burst": burst,
        "completed": completed,
        "rejected": rejected,
        "hung": hung,
        "shed_rate": shed_rate,
        "wall_seconds": wall,
        "errors": errors,
        "ok": (
            hung == 0
            and not errors
            and completed + rejected == burst
            and completed > 0
            and rejected > 0
        ),
    }


def run_chaos_phase(
    server: Server,
    references: dict,
    modeljoin_reference,
    clients: int,
    queries_per_client: int,
    seed: int,
) -> dict:
    """The steady workload under 10% injected faults (serve.admit in)."""
    injector = faults.FaultInjector(seed=seed)
    injector.raise_with_probability("serve.admit", 0.1)
    injector.raise_with_probability("io.block_read", 0.1)
    injector.raise_with_probability("worker.task", 0.05)
    with faults.active(injector):
        stats, wall = _run_clients(
            server,
            references,
            modeljoin_reference,
            clients,
            queries_per_client,
            modeljoin_share=0,
        )
        fault_stats = injector.statistics()
    submitted = clients * queries_per_client
    return {
        "spec": "serve.admit=prob:0.1,io.block_read=prob:0.1,"
        "worker.task=prob:0.05",
        "seed": seed,
        "submitted": submitted,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "wall_seconds": wall,
        "faults": fault_stats,
        "errors": stats.errors,
        "ok": (
            not stats.errors
            and stats.completed + stats.rejected == submitted
            and stats.completed > 0
        ),
    }


def run_serve_bench(config: BenchConfig, seed: int = 7) -> dict:
    """All three serving phases against one persistent database."""
    if config.preset == "smoke":
        rows_per_group, iris_rows, width = 200, 500, 16
        clients, queries_per_client = 4, 6
        queue_capacity, dispatchers = 4, 2
    else:
        rows_per_group, iris_rows, width = 1_000, 2_000, 32
        clients, queries_per_client = 8, 16
        queue_capacity, dispatchers = 8, 4
    root = tempfile.mkdtemp(prefix="repro-serve-")
    try:
        database, references, modeljoin_reference = _setup(
            root, rows_per_group, iris_rows, width
        )
        server = Server(
            database,
            queue_capacity=queue_capacity,
            dispatchers=dispatchers,
            default_timeout_seconds=DEADLINE_SECONDS,
        )
        steady = run_steady_phase(
            server,
            database,
            references,
            modeljoin_reference,
            clients,
            queries_per_client,
        )
        overload = run_overload_phase(server, references)
        chaos = run_chaos_phase(
            server,
            references,
            modeljoin_reference,
            clients,
            queries_per_client,
            seed=seed,
        )
        database.close()  # exercises close-under-serving teardown
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "experiment": "serve",
        "preset": config.preset,
        "workload": {
            "rows_per_group": rows_per_group,
            "iris_rows": iris_rows,
            "model_width": width,
            "clients": clients,
            "queries_per_client": queries_per_client,
            "queue_capacity": queue_capacity,
            "dispatchers": dispatchers,
        },
        "steady": steady,
        "overload": overload,
        "chaos": chaos,
        "ok": steady["ok"] and overload["ok"] and chaos["ok"],
    }


def format_serve_report(report: dict) -> str:
    """Human-readable summary of :func:`run_serve_bench`."""
    steady = report["steady"]
    overload = report["overload"]
    chaos = report["chaos"]
    title = (
        "Serving — concurrency, overload shedding, chaos "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title)]
    lines.append(
        f"steady: {steady['completed']} queries from "
        f"{steady['clients']} clients at {steady['qps']:.1f} qps   "
        f"p50 {steady['p50_seconds'] * 1000:.1f} ms   "
        f"p99 {steady['p99_seconds'] * 1000:.1f} ms "
        f"(bound {steady['p99_bound_seconds'] * 1000:.0f} ms)   "
        f"pins leaked: {steady['pinned_generations_after']} "
        f"-> {'PASS' if steady['ok'] else 'FAIL'}"
    )
    lines.append(
        f"overload: burst {overload['burst']} vs capacity "
        f"{overload['queue_capacity']}   completed "
        f"{overload['completed']}   rejected {overload['rejected']} "
        f"(shed rate {overload['shed_rate'] * 100:.0f}%)   hung "
        f"{overload['hung']} -> {'PASS' if overload['ok'] else 'FAIL'}"
    )
    lines.append(
        f"chaos [{chaos['spec']}]: {chaos['completed']} completed + "
        f"{chaos['rejected']} rejected of {chaos['submitted']} "
        f"-> {'PASS' if chaos['ok'] else 'FAIL'}"
    )
    for phase in (steady, overload, chaos):
        for error in phase["errors"]:
            lines.append(f"FAILURE: {error}")
    lines.append(f"\nVerdict: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
