"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DatabaseError(ReproError):
    """Base class for errors raised by the database engine substrate."""


class CatalogError(DatabaseError):
    """A catalog object (table, model, function) is missing or duplicated."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindError(DatabaseError):
    """A name in the query could not be resolved against the catalog."""


class PlanError(DatabaseError):
    """The planner could not produce a physical plan for the query."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a physical plan."""


class TypeMismatchError(DatabaseError):
    """An expression or insert used a value of an incompatible type."""


class QueryTimeoutError(ExecutionError):
    """A query exceeded its deadline (or was cancelled cooperatively).

    Raised from :meth:`repro.db.resilience.CancellationToken.check` at
    the cooperative checkpoints (morsel loop, operator ``next()`` loops,
    device kernels).  Deliberately *not* retried by the worker-pool
    retry layer: re-running a timed-out pipeline can only time out
    again, later.
    """


class QueryCancelledError(QueryTimeoutError):
    """A query was cancelled explicitly rather than by its deadline.

    Raised from :meth:`repro.db.resilience.CancellationToken.check`
    when the token was cancelled by a caller — a session closing, a
    disconnecting wire client, or the engine draining on ``close()``.
    Subclasses :class:`QueryTimeoutError` so every cooperative
    checkpoint, retry-exclusion rule and fallback guard treats
    cancellation exactly like a deadline miss; the query log still
    distinguishes the two (status ``cancelled`` vs ``timeout``).
    """


class QueryRejectedError(DatabaseError):
    """The serving layer shed this query at admission.

    Raised when the bounded admission queue is saturated and this query
    lost the shedding decision (lowest priority first, then closest to
    its deadline), when the server is closing, or when the
    ``serve.admit`` fault site fires under chaos testing.  Deliberately
    deterministic and *immediate*: a shed query never occupies a worker
    and never hangs its client.  Logged to ``system.queries`` with
    status ``rejected`` so shed load is distinguishable from failures.
    """


class SessionClosedError(DatabaseError):
    """An operation used a serving session that is already closed."""


class CompiledKernelError(ExecutionError):
    """A failure in the compiled-kernel execution path.

    The engine's one-shot fallback catches this type: the query is
    re-executed on the interpreted path (``use_compiled_kernels=False``)
    and the compile circuit breaker records the failure, so repeated
    compiler trouble disables compilation engine-wide for a cool-down.
    """


class KernelCompileError(CompiledKernelError):
    """Generating or ``exec``-ing a kernel's Python source failed."""


class KernelExecutionError(CompiledKernelError):
    """A compiled kernel raised while processing a batch.

    Chains the original error as ``__cause__``.  Cooperative
    cancellation (:class:`QueryTimeoutError`) is deliberately *not*
    wrapped — a timeout must abort the query, not demote it to the
    interpreted path.
    """


class WorkerCrashError(ExecutionError):
    """A pool worker's task crashed.

    Used in two roles: as the ``__cause__`` chained onto a propagated
    task error (so the raised exception keeps its original type and
    worker traceback while recording *which* task on *which* worker
    failed), and as the error pipelines blocked on a shared build
    barrier observe when a cooperating pipeline crashed and aborted
    the barrier.
    """


class ShardError(ExecutionError):
    """A sharded-execution failure at the coordinator.

    Raised when a statement cannot be distributed (two sharded tables
    without a repartition exchange, ``system.*`` scans mixed with
    sharded scans, aggregating subqueries) or when the shard layer is
    misconfigured.  Distinguished from :class:`ShardCrashError` so
    callers can tell "this query shape is unsupported" from "a shard
    process died".
    """


class ShardCrashError(ShardError):
    """A shard worker process died or became unreachable.

    Raised when a pipe to a shard hits EOF mid-request or the process
    sentinel fires while responses are outstanding.  The coordinator
    marks the shard dead; subsequent sharded queries fail fast with the
    same type instead of hanging on a closed pipe.
    """


class FallbackExhaustedError(ReproError):
    """Every approach in a resilient fallback chain failed."""


class CacheCorruptionError(ReproError):
    """A cached artifact failed its integrity (checksum) verification.

    The model cache quarantines corrupt entries transparently instead of
    raising, so this type surfaces only from callers that ask for strict
    verification.
    """


class InjectedFaultError(ReproError):
    """A fault deliberately raised by :mod:`repro.db.faults`.

    Carries the fault site so tests and retry layers can distinguish
    injected failures from organic ones.
    """

    def __init__(self, site: str, message: str | None = None):
        super().__init__(
            message or f"injected fault at site {site!r}"
        )
        self.site = site


class ModelError(ReproError):
    """Base class for errors raised by the neural-network substrate."""


class TrainingError(DatabaseError):
    """``CREATE MODEL`` / ``ALTER MODEL`` failed (bad hyperparameters,
    unusable training data, or an exhausted mid-epoch retry budget).

    A failed training run is atomic: no model table is left behind and
    no catalog entry is registered."""


class ModelGraphError(ModelError):
    """The model architecture is invalid or unsupported."""


class DeviceError(ReproError):
    """A device (host or simulated GPU) operation failed."""


class ModelJoinError(ReproError):
    """An error in one of the ModelJoin integration approaches."""


class UnsupportedModelError(ModelJoinError):
    """The given model uses features the chosen approach cannot handle."""
