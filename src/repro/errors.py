"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DatabaseError(ReproError):
    """Base class for errors raised by the database engine substrate."""


class CatalogError(DatabaseError):
    """A catalog object (table, model, function) is missing or duplicated."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindError(DatabaseError):
    """A name in the query could not be resolved against the catalog."""


class PlanError(DatabaseError):
    """The planner could not produce a physical plan for the query."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a physical plan."""


class TypeMismatchError(DatabaseError):
    """An expression or insert used a value of an incompatible type."""


class ModelError(ReproError):
    """Base class for errors raised by the neural-network substrate."""


class ModelGraphError(ModelError):
    """The model architecture is invalid or unsupported."""


class DeviceError(ReproError):
    """A device (host or simulated GPU) operation failed."""


class ModelJoinError(ReproError):
    """An error in one of the ModelJoin integration approaches."""


class UnsupportedModelError(ModelJoinError):
    """The given model uses features the chosen approach cannot handle."""
