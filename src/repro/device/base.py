"""Device interface and statistics.

A device exposes the BLAS-flavoured kernel set the paper's native
operator needs (Section 5.4 / Listing 5): ``gemm`` (sgemm), elementwise
multiply/add (vsMul/vsAdd), copy, and the activation kernels.  Arrays
"resident on the device" are plain NumPy arrays; what distinguishes
devices is *accounting*, not representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.nn.activations import get_activation


@dataclass
class DeviceStats:
    """Resource counters a device accumulates across kernel calls."""

    kernel_launches: int = 0
    flops: int = 0
    elementwise_elements: int = 0
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    #: wall-clock seconds actually spent in NumPy inside device kernels
    host_kernel_seconds: float = 0.0
    #: modeled seconds the kernels would take on the simulated device
    modeled_kernel_seconds: float = 0.0
    #: modeled seconds for host<->device transfers
    modeled_transfer_seconds: float = 0.0

    def reset(self) -> None:
        self.kernel_launches = 0
        self.flops = 0
        self.elementwise_elements = 0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.host_kernel_seconds = 0.0
        self.modeled_kernel_seconds = 0.0
        self.modeled_transfer_seconds = 0.0

    @property
    def modeled_seconds(self) -> float:
        return self.modeled_kernel_seconds + self.modeled_transfer_seconds

    def merge(self, other: "DeviceStats") -> None:
        self.kernel_launches += other.kernel_launches
        self.flops += other.flops
        self.elementwise_elements += other.elementwise_elements
        self.bytes_to_device += other.bytes_to_device
        self.bytes_to_host += other.bytes_to_host
        self.host_kernel_seconds += other.host_kernel_seconds
        self.modeled_kernel_seconds += other.modeled_kernel_seconds
        self.modeled_transfer_seconds += other.modeled_transfer_seconds


class Device:
    """Base device: NumPy compute, no extra accounting (the host CPU)."""

    name = "abstract"
    is_gpu = False

    def __init__(self) -> None:
        self.stats = DeviceStats()
        #: optional span producer (see :meth:`set_tracer`); kernels emit
        #: ``kernel``-category spans only while it is enabled
        self._tracer = None
        #: optional cooperative deadline (see :meth:`set_cancellation`)
        self._cancellation = None

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.db.tracing.Tracer`.

        Kernel calls (``gemm``/``multiply``/``add``/``copy``/
        ``activation``) then record spans in the ``kernel`` category
        whenever the tracer is enabled; pass ``None`` to detach.
        """
        self._tracer = tracer

    def set_cancellation(self, token) -> None:
        """Attach a :class:`repro.db.resilience.CancellationToken`.

        ``gemm`` — the kernel that dominates inference time — then
        checks the token before computing, so a query deadline fires
        between kernels even inside a long model forward.  Pass
        ``None`` to detach.
        """
        self._cancellation = token

    # ------------------------------------------------------------------
    # memory movement
    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray) -> np.ndarray:
        """Move a host array onto the device."""
        return array

    def to_host(self, array: np.ndarray) -> np.ndarray:
        """Move a device array back to the host."""
        return array

    def allocate(self, shape: tuple[int, ...]) -> np.ndarray:
        """Allocate an uninitialized float32 buffer on the device."""
        return np.empty(shape, dtype=np.float32)

    def zeros(self, shape: tuple[int, ...]) -> np.ndarray:
        return np.zeros(shape, dtype=np.float32)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        accumulate: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``a @ b`` (+ *accumulate*), like BLAS sgemm's C := AB + C.

        With *out* the product is written into the given buffer (which
        must not alias ``a``, ``b`` or *accumulate*); *accumulate* is
        never modified either way.
        """
        if self._cancellation is not None:
            self._cancellation.check()
        self._check_float32(a, b)
        if a.shape[1] != b.shape[0]:
            raise DeviceError(
                f"gemm shape mismatch: {a.shape} @ {b.shape}"
            )
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "gemm",
                category="kernel",
                args={
                    "device": self.name,
                    "m": a.shape[0],
                    "k": a.shape[1],
                    "n": b.shape[1],
                },
            ):
                return self._gemm(a, b, accumulate, out)
        return self._gemm(a, b, accumulate, out)

    @staticmethod
    def _gemm(a, b, accumulate, out) -> np.ndarray:
        if out is None:
            result = a @ b
            if accumulate is not None:
                result = result + accumulate
            return result
        np.matmul(a, b, out=out)
        if accumulate is not None:
            np.add(out, accumulate, out=out)
        return out

    def _elementwise_span(self, name: str, elements: int):
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            return tracer.span(
                name,
                category="kernel",
                args={"device": self.name, "elements": elements},
            )
        return None

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Elementwise product (vsMul)."""
        span = self._elementwise_span("multiply", a.size)
        if span is None:
            return a * b if out is None else np.multiply(a, b, out=out)
        with span:
            return a * b if out is None else np.multiply(a, b, out=out)

    def add(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Elementwise sum (vsAdd)."""
        span = self._elementwise_span("add", a.size)
        if span is None:
            return a + b if out is None else np.add(a, b, out=out)
        with span:
            return a + b if out is None else np.add(a, b, out=out)

    def copy(
        self, array: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            return array.copy()
        np.copyto(out, array)
        return out

    def activation(
        self,
        name: str,
        array: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply a named activation kernel (in place when *out* given;
        ``out is array`` is allowed)."""
        span = self._elementwise_span(f"activation:{name}", array.size)
        if span is None:
            return get_activation(name).apply(array, out)
        with span:
            return get_activation(name).apply(array, out)

    def transpose(self, array: np.ndarray) -> np.ndarray:
        """Materialized transpose (the operator transposes the input
        matrix once before the first layer, Section 5.4)."""
        return np.ascontiguousarray(array.T)

    def synchronize(self) -> None:
        """Wait for outstanding device work (no-op on the host)."""

    @staticmethod
    def _check_float32(*arrays: np.ndarray) -> None:
        for array in arrays:
            if array.dtype != np.float32:
                raise DeviceError(
                    f"device kernels are float32-only, got {array.dtype}"
                )


class DeviceWindow:
    """Context manager measuring wall time over a code region, with the
    device's measured kernel time swapped for its modeled time.

    For a host device the result is plain wall time (deltas are zero).
    For the simulated GPU::

        seconds = wall - host_kernel_delta + modeled_delta

    Deltas are computed against a stats snapshot taken on entry, so
    windows compose correctly across repeated runs on one device.
    """

    def __init__(self, device: "Device"):
        self.device = device
        self.seconds = 0.0
        self.wall_seconds = 0.0
        self._start = 0.0
        self._host0 = 0.0
        self._modeled0 = 0.0

    def __enter__(self) -> "DeviceWindow":
        import time

        stats = self.device.stats
        self._host0 = stats.host_kernel_seconds
        self._modeled0 = stats.modeled_seconds
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        import time

        self.wall_seconds = time.perf_counter() - self._start
        stats = self.device.stats
        host_delta = stats.host_kernel_seconds - self._host0
        modeled_delta = stats.modeled_seconds - self._modeled0
        self.seconds = max(
            self.wall_seconds - host_delta + modeled_delta, 0.0
        )
