"""Simulated GPU device.

No physical GPU is available in this reproduction, so the GPU variants
of the ModelJoin operator and the runtime integration run on a
*simulated* device: every kernel is executed with NumPy — results are
exact — while a calibrated cost model accounts the time the kernel and
the host<->device transfers would take on the paper's A100-over-PCIe
setup.

A GPU variant's reported runtime is::

    wall_time - host_kernel_seconds + modeled_seconds

i.e. only the portion that would actually run on the GPU is swapped
for modeled time; everything else (the engine, conversions, Python
overhead) stays measured.  The crossover behaviour the paper reports —
GPU no better than CPU for small models (transfer/launch overhead
dominates), clearly better for large models and LSTMs (compute
dominates) — follows directly from the model's constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.db import faults
from repro.device.base import Device


@dataclass(frozen=True)
class GpuCostModel:
    """Cost constants of the simulated accelerator.

    Defaults approximate an NVIDIA A100 (40 GB, PCIe): ~10 TFLOP/s
    sustained fp32 GEMM, ~200 Gelem/s elementwise, ~12 GB/s effective
    PCIe bandwidth, a few microseconds per transfer/launch.
    """

    gemm_flops_per_second: float = 10e12
    elementwise_per_second: float = 200e9
    transfer_bytes_per_second: float = 12e9
    transfer_latency_seconds: float = 10e-6
    kernel_launch_seconds: float = 5e-6

    def gemm_seconds(self, m: int, k: int, n: int) -> float:
        flops = 2.0 * m * k * n
        return self.kernel_launch_seconds + flops / self.gemm_flops_per_second

    def elementwise_seconds(self, elements: int) -> float:
        return (
            self.kernel_launch_seconds
            + elements / self.elementwise_per_second
        )

    def transfer_seconds(self, nbytes: int) -> float:
        return (
            self.transfer_latency_seconds
            + nbytes / self.transfer_bytes_per_second
        )


class SimulatedGpu(Device):
    """A device that computes on the host and accounts modeled time."""

    name = "gpu-sim"
    is_gpu = True

    def __init__(self, cost_model: GpuCostModel | None = None):
        super().__init__()
        self.cost_model = cost_model or GpuCostModel()

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray) -> np.ndarray:
        self.stats.bytes_to_device += array.nbytes
        self.stats.modeled_transfer_seconds += self.cost_model.transfer_seconds(
            array.nbytes
        )
        # A real transfer produces a distinct buffer; keep that property.
        return np.array(array, dtype=np.float32, copy=True)

    def to_host(self, array: np.ndarray) -> np.ndarray:
        self.stats.bytes_to_host += array.nbytes
        self.stats.modeled_transfer_seconds += self.cost_model.transfer_seconds(
            array.nbytes
        )
        return np.array(array, copy=True)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def gemm(self, a, b, accumulate=None, out=None):
        # Fault point: only the *simulated GPU's* gemm can be faulted,
        # so the operator's fall-back to the host device escapes the
        # injected failure (and stays bit-exact — both devices compute
        # with the same NumPy kernels).
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("device.gemm")
        started = time.perf_counter()
        result = super().gemm(a, b, accumulate, out)
        self.stats.host_kernel_seconds += time.perf_counter() - started
        self.stats.kernel_launches += 1
        self.stats.flops += 2 * a.shape[0] * a.shape[1] * b.shape[1]
        self.stats.modeled_kernel_seconds += self.cost_model.gemm_seconds(
            a.shape[0], a.shape[1], b.shape[1]
        )
        return result

    def _elementwise(self, compute, elements: int):
        started = time.perf_counter()
        result = compute()
        self.stats.host_kernel_seconds += time.perf_counter() - started
        self.stats.kernel_launches += 1
        self.stats.elementwise_elements += elements
        self.stats.modeled_kernel_seconds += (
            self.cost_model.elementwise_seconds(elements)
        )
        return result

    def multiply(self, a, b, out=None):
        return self._elementwise(
            lambda: Device.multiply(self, a, b, out), int(np.size(a))
        )

    def add(self, a, b, out=None):
        return self._elementwise(
            lambda: Device.add(self, a, b, out), int(np.size(a))
        )

    def copy(self, array, out=None):
        return self._elementwise(
            lambda: Device.copy(self, array, out), int(np.size(array))
        )

    def activation(self, name, array, out=None):
        return self._elementwise(
            lambda: Device.activation(self, name, array, out),
            int(np.size(array)),
        )

    def transpose(self, array):
        return self._elementwise(
            lambda: np.ascontiguousarray(array.T), int(np.size(array))
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def adjusted_seconds(self, wall_seconds: float) -> float:
        """Swap measured kernel time for modeled device time.

        Clamped at zero from below for safety (cannot happen unless the
        clock misbehaves).
        """
        adjusted = (
            wall_seconds
            - self.stats.host_kernel_seconds
            + self.stats.modeled_seconds
        )
        return max(adjusted, 0.0)
