"""Hardware abstraction: host CPU and a simulated GPU.

Both the native ModelJoin operator and the ML-runtime session execute
their linear algebra through a :class:`~repro.device.base.Device`.  The
:class:`~repro.device.host.HostDevice` is plain NumPy.  The
:class:`~repro.device.gpu.SimulatedGpu` *computes* with NumPy too (all
results stay exact) but additionally accounts a modeled execution time
(PCIe transfers, kernel launches, throughput) calibrated to the paper's
A100-over-PCIe setup — see DESIGN.md Section 6 for the constants and
the honesty rules around reporting GPU numbers.
"""

from repro.device.base import Device, DeviceStats
from repro.device.host import HostDevice
from repro.device.gpu import GpuCostModel, SimulatedGpu

__all__ = [
    "Device",
    "DeviceStats",
    "HostDevice",
    "SimulatedGpu",
    "GpuCostModel",
]
