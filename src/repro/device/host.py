"""Host (CPU) device.

Plain NumPy execution — NumPy's BLAS plays the role of Intel MKL in
the paper's CPU variant.  The host device still counts launches and
FLOPs so ablation benches can reason about arithmetic intensity, but
its modeled time is zero: CPU variants are reported at wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.device.base import Device


class HostDevice(Device):
    name = "cpu"
    is_gpu = False

    def gemm(self, a, b, accumulate=None, out=None):
        result = super().gemm(a, b, accumulate, out)
        self.stats.kernel_launches += 1
        self.stats.flops += 2 * a.shape[0] * a.shape[1] * b.shape[1]
        return result

    def multiply(self, a, b, out=None):
        self.stats.kernel_launches += 1
        self.stats.elementwise_elements += int(np.size(a))
        return super().multiply(a, b, out)

    def add(self, a, b, out=None):
        self.stats.kernel_launches += 1
        self.stats.elementwise_elements += int(np.size(a))
        return super().add(a, b, out)

    def activation(self, name, array, out=None):
        self.stats.kernel_launches += 1
        self.stats.elementwise_elements += int(np.size(array))
        return super().activation(name, array, out)
