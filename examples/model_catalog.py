"""Model-table semantics in the catalog (paper Section 5.5).

"One could think about introducing semantics in the model table
definition ...  This way, one could fix the model table schema and
maintain a model's meta information in the database catalog.  Making
the DBMS aware that a table is a model additionally enables custom
query optimizations, sanity checks and also potential model lifetime
cycle management."

This example exercises exactly that: publish two versions of a model,
inspect the catalog, run MODEL JOIN without naming input columns (the
catalog knows the arity), estimate query cost from the metadata before
running, swap the active model, and drop the backing table — the
catalog cascades.

Run:  python examples/model_catalog.py
"""

import numpy as np

import repro
from repro.core.cost.model import InferenceCostModel
from repro.core.registry import publish_model
from repro.nn import Dense, Sequential
from repro.workloads.iris import load_iris_table


def main() -> None:
    db = repro.connect()
    load_iris_table(db, rows=1_000)

    # Publish v1 (small) and v2 (wider) of the same classifier.
    v1 = Sequential([Dense(4, "relu"), Dense(1, "sigmoid")], 4, seed=1)
    v2 = Sequential([Dense(32, "relu"), Dense(1, "sigmoid")], 4, seed=2)
    publish_model(db, "clf_v1", v1)
    publish_model(db, "clf_v2", v2)

    print("registered models:")
    for name, metadata in sorted(db.catalog.models.items()):
        layers = " -> ".join(
            f"{layer.layer_type}({layer.units})"
            for layer in metadata.layers
        )
        print(
            f"  {name}: table={metadata.table_name}, "
            f"inputs={metadata.input_width}, {layers}"
        )

    # The catalog knows the input arity: MODEL JOIN needs no USING —
    # the first four float columns of the flow feed the model.
    r1 = db.execute(
        "SELECT id, prediction_0 FROM iris MODEL JOIN clf_v1 ORDER BY id"
    )
    r2 = db.execute(
        "SELECT id, prediction_0 FROM iris MODEL JOIN clf_v2 ORDER BY id"
    )
    print(
        "\nv1 vs v2 mean score:",
        round(float(np.mean(r1.column("prediction_0"))), 4),
        "vs",
        round(float(np.mean(r2.column("prediction_0"))), 4),
    )

    # Cost estimation from the catalog metadata alone (Section 7).
    cost_model = InferenceCostModel()
    observations = []
    for rows in (200, 500, 1000):
        for name in ("clf_v1", "clf_v2"):
            metadata = db.catalog.model(name)
            from repro.core.cost.model import flops_per_tuple_of_metadata

            db.execute(
                f"SELECT id, prediction_0 FROM "
                f"(SELECT * FROM iris WHERE id < {rows}) AS s "
                f"MODEL JOIN {name}"
            )
            observations.append(
                (
                    rows,
                    flops_per_tuple_of_metadata(metadata),
                    db.last_profile.wall_seconds,
                )
            )
    cost_model.calibrate(observations)
    estimate = cost_model.estimate(db.catalog.model("clf_v2"), 100_000)
    print(
        f"\ncalibrated cost model predicts "
        f"{estimate.predicted_seconds * 1e3:.1f} ms for 100k tuples "
        f"with clf_v2 ({estimate.total_flops:.2e} FLOPs)"
    )

    # Lifecycle: dropping the backing table deregisters the model.
    table = db.catalog.model("clf_v1").table_name
    db.execute(f"DROP TABLE {table}")
    print(
        "\nafter dropping", table, "->",
        "clf_v1 registered?" , db.catalog.has_model("clf_v1"),
    )


if __name__ == "__main__":
    main()
