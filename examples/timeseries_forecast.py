"""LSTM time-series forecasting with the Section 4 windowing self-join.

The paper's LSTM workload as an application: a raw sensor-style series
lives in the database as (id, value); the windowing self-join turns it
into (id, x1, x2, x3) rows *inside the engine*; an LSTM + dense head
forecasts the next value, executed both by ML-To-SQL and by the native
ModelJoin, fed directly from the self-join subquery.

Run:  python examples/timeseries_forecast.py
"""

import numpy as np

import repro
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.registry import publish_model
from repro.nn import Dense, Lstm, Sequential
from repro.workloads.timeseries import (
    load_series_table,
    windowed_view_query,
)

TIME_STEPS = 3


def main() -> None:
    db = repro.connect()
    series = load_series_table(db, rows=2_000, time_steps=TIME_STEPS)
    print(f"raw series: {db.table('sinus').row_count} points")

    # --- windowing in SQL (self-join n-1 times, Section 4) ----------
    window_sql = windowed_view_query("sinus", TIME_STEPS)
    print("windowing SQL:", window_sql)
    db.execute(
        "CREATE TABLE windows (id INTEGER, x1 FLOAT, x2 FLOAT, x3 FLOAT)"
    )
    db.execute("INSERT INTO windows " + window_sql)
    print("window rows:", db.table("windows").row_count)

    # --- an LSTM forecaster (weights from a fixed seed; the paper
    # evaluates inference, not training, for recurrent models) --------
    model = Sequential(
        [Lstm(16), Dense(1, "linear")], input_width=TIME_STEPS, seed=21
    )
    ids, windows = series.windows()
    reference = model.predict(windows)

    # --- ML-To-SQL over the windowed table ---------------------------
    ml_to_sql = MlToSqlModelJoin(db, model, model_table="forecaster_sql")
    predictions = ml_to_sql.predict("windows", "id", ["x1", "x2", "x3"])
    print(
        "\nML-To-SQL forecast, max |err| vs reference:",
        np.abs(predictions - reference).max(),
    )

    # --- native ModelJoin, nested directly over the self-join --------
    publish_model(db, "forecaster", model)
    result = db.execute(
        "SELECT id, prediction_0 FROM "
        f"({window_sql}) AS w MODEL JOIN forecaster USING (x1, x2, x3) "
        "ORDER BY id"
    )
    native = result.column("prediction_0")
    print(
        "native MODEL JOIN over the self-join, max |err|:",
        np.abs(native - reference[:, 0]).max(),
    )

    # --- forecast quality summary ------------------------------------
    targets = series.targets()
    usable = len(targets)
    errors = native[:usable] - targets
    print(
        f"\nforecast RMSE over {usable} windows: "
        f"{float(np.sqrt(np.mean(errors**2))):.4f} "
        "(untrained weights — structure demo, not accuracy)"
    )
    del ids


if __name__ == "__main__":
    main()
