"""Quickstart: every in-database inference approach on one model.

Trains a tiny classifier on the synthetic Iris data, then runs the same
inference through all five approaches of the paper and shows they agree
with the framework reference:

1. ML-To-SQL          — generated nested SQL (paper Section 4)
2. native ModelJoin   — the engine operator, via MODEL JOIN SQL (Section 5)
3. TF(C-API)          — runtime integrated over its native API
4. Python UDF         — vectorized UDF inside the engine
5. TF(Python)         — baseline: data out over ODBC, infer client-side

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core.client.external import ExternalInference
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.registry import publish_model
from repro.core.runtime_api.runner import RuntimeApiModelJoin
from repro.core.udf_integration.inference_udf import UdfModelJoin
from repro.nn import Dense, Sequential
from repro.nn.training import fit
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table


def main() -> None:
    # 1. A database with 2 000 fact rows.
    db = repro.connect()
    dataset = load_iris_table(db, rows=2_000)
    features = list(FEATURE_COLUMNS)

    # 2. Train a small model (is this row a 'virginica'?).
    model = Sequential(
        [Dense(8, "tanh"), Dense(1, "sigmoid")], input_width=4, seed=7
    )
    targets = (dataset.labels == 2).astype(np.float32)
    report = fit(
        model, dataset.features, targets, epochs=60, learning_rate=0.05
    )
    print(f"trained: loss {report.losses[0]:.3f} -> {report.final_loss:.3f}")
    reference = model.predict(dataset.features)

    # 3. ML-To-SQL: the model becomes a table + one nested SQL query.
    ml_to_sql = MlToSqlModelJoin(db, model)
    query = ml_to_sql.generator("iris", "id", features).inference_query()
    print(f"\nML-To-SQL generated {len(query)} characters of SQL, e.g.:")
    print(" ", query[:120], "...")
    predictions = ml_to_sql.predict("iris", "id", features)
    print("  max |err| vs reference:", np.abs(predictions - reference).max())

    # 4. Native ModelJoin through the MODEL JOIN SQL syntax.
    publish_model(db, "virginica", model)
    result = db.execute(
        "SELECT id, prediction_0 FROM iris "
        "MODEL JOIN virginica USING "
        "(sepal_length, sepal_width, petal_length, petal_width) "
        "ORDER BY id"
    )
    native = result.column("prediction_0")
    print("\nnative MODEL JOIN:")
    print("  max |err| vs reference:", np.abs(native - reference[:, 0]).max())

    # 5. Runtime C-API integration.
    capi = RuntimeApiModelJoin(db, model)
    predictions = capi.predict("iris", "id", features)
    print("\nTF(C-API)-style runtime integration:")
    print("  max |err| vs reference:", np.abs(predictions - reference).max())

    # 6. Vectorized Python UDF.
    udf = UdfModelJoin(db, model, name="score")
    print("\nUDF query:", udf.query("iris", "id", features))
    predictions = udf.predict("iris", "id", features)
    print("  max |err| vs reference:", np.abs(predictions - reference).max())

    # 7. The baseline: ship everything to the client over ODBC.
    external = ExternalInference(db, model)
    run = external.run("iris", "id", features)
    print("\nTF(Python) baseline:")
    print(f"  transfer: {run.transfer.bytes_on_wire} bytes on the wire")
    print(f"  fetch {run.fetch_seconds * 1e3:.1f} ms, "
          f"inference {run.inference_seconds * 1e3:.1f} ms")
    print(
        "  max |err| vs reference:",
        np.abs(run.predictions - reference).max(),
    )


if __name__ == "__main__":
    main()
