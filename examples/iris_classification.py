"""Iris classification end-to-end, entirely in the database.

The paper's dense-layer workload (Section 6.1) as a complete
application: encode features in SQL, train a multi-output classifier,
publish it to the catalog, classify with the native ModelJoin, and
aggregate the predictions inside the same query — the "query
integration" advantage of in-DBMS inference (Section 1).

Run:  python examples/iris_classification.py
"""

import numpy as np

import repro
from repro.core.encoding import min_max_encode_query
from repro.core.registry import publish_model
from repro.nn import Dense, Sequential
from repro.nn.training import accuracy, fit
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table


def main() -> None:
    db = repro.connect()
    dataset = load_iris_table(db, rows=3_000)

    # --- feature scaling in SQL (paper Section 4: "Min-Max-Encoding
    # can be implemented in SQL in a straight-forward way") ----------
    scaled_query = min_max_encode_query(
        db, "iris", "id", list(FEATURE_COLUMNS)
    )
    print("scaling SQL:", scaled_query[:110], "...")
    scaled = db.execute(scaled_query + " ORDER BY id")
    scaled_features = np.column_stack(
        [scaled.column(f"{name}_scaled") for name in FEATURE_COLUMNS]
    ).astype(np.float32)

    # --- train a 3-class classifier on the scaled features ----------
    targets = np.eye(3, dtype=np.float32)[dataset.labels]
    model = Sequential(
        [Dense(16, "tanh"), Dense(3, "sigmoid")], input_width=4, seed=1
    )
    fit(model, scaled_features, targets, epochs=80, learning_rate=0.1)
    print(
        "training accuracy:",
        round(accuracy(model, scaled_features, dataset.labels), 3),
    )

    # --- materialize the scaled features as a fact table ------------
    db.execute(
        "CREATE TABLE iris_scaled (id INTEGER, f0 FLOAT, f1 FLOAT, "
        "f2 FLOAT, f3 FLOAT)"
    )
    db.execute(
        "INSERT INTO iris_scaled "
        + scaled_query.replace("SELECT id,", "SELECT id AS id,", 1)
    )

    # --- publish + classify with the native operator ----------------
    publish_model(db, "iris_clf", model)
    result = db.execute(
        "SELECT id, prediction_0, prediction_1, prediction_2 "
        "FROM iris_scaled MODEL JOIN iris_clf USING (f0, f1, f2, f3) "
        "ORDER BY id"
    )
    scores = np.column_stack(
        [result.column(f"prediction_{k}") for k in range(3)]
    )
    predicted_class = scores.argmax(axis=1)
    in_db_accuracy = float(np.mean(predicted_class == dataset.labels))
    print("in-database accuracy:", round(in_db_accuracy, 3))

    # --- aggregate predictions inside the engine ---------------------
    # Average class-2 score per true species, without moving data out.
    summary = db.execute(
        "SELECT s.species AS species, AVG(p.prediction_2) AS virginica_score "
        "FROM (SELECT id, prediction_2 FROM iris_scaled "
        "      MODEL JOIN iris_clf USING (f0, f1, f2, f3)) AS p, "
        "     iris AS s "
        "WHERE p.id = s.id GROUP BY s.species ORDER BY species"
    )
    print("\navg virginica score by true species:")
    for species, score in summary.rows:
        print(f"  species {species}: {score:.3f}")


if __name__ == "__main__":
    main()
