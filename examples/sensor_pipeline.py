"""An IoT-style analytics pipeline with inference in the middle.

The paper motivates in-DBMS inference with workloads where predictions
feed further relational processing ("query integration", Section 1):
once data leaves for Python, the rest of the pipeline must follow.

This example scores sensor readings with a published anomaly model and
then — inside the same SQL query — joins device metadata, filters on
the score, and aggregates per site.  Only the small aggregate leaves
the engine, which is also the paper's privacy argument ("accessing
sensitive data"): raw readings never cross the database boundary.

Run:  python examples/sensor_pipeline.py
"""

import numpy as np

import repro
from repro.core.registry import publish_model
from repro.nn import Dense, Sequential
from repro.nn.training import fit


def build_data(db, rows=5_000, devices=20):
    rng = np.random.default_rng(11)
    device_ids = rng.integers(0, devices, size=rows)
    temperature = rng.normal(40, 5, size=rows).astype(np.float32)
    vibration = rng.normal(1.0, 0.3, size=rows).astype(np.float32)
    current = rng.normal(10, 2, size=rows).astype(np.float32)
    # A planted anomaly pattern: hot + shaky machines.
    anomaly = (
        (temperature > 46) & (vibration > 1.2)
    ).astype(np.float32)
    db.execute(
        "CREATE TABLE readings (id INTEGER, device_id INTEGER, "
        "temperature FLOAT, vibration FLOAT, current FLOAT)"
    )
    db.table("readings").append_columns(
        id=np.arange(rows, dtype=np.int64),
        device_id=device_ids.astype(np.int64),
        temperature=temperature,
        vibration=vibration,
        current=current,
    )
    db.execute("CREATE TABLE devices (device_id INTEGER, site INTEGER)")
    db.table("devices").append_columns(
        device_id=np.arange(devices, dtype=np.int64),
        site=(np.arange(devices) % 4).astype(np.int64),
    )
    features = np.column_stack([temperature, vibration, current])
    return features, anomaly


def main() -> None:
    db = repro.connect()
    features, anomaly = build_data(db)

    model = Sequential(
        [Dense(12, "tanh"), Dense(1, "sigmoid")], input_width=3, seed=5
    )
    # Train on standardized features (raw temperatures saturate tanh),
    # oversampling the ~3% positive class so the model actually alarms.
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    normalized = (features - mean) / std
    positives = np.flatnonzero(anomaly > 0)
    balanced = np.concatenate(
        [np.arange(len(anomaly)), np.repeat(positives, 15)]
    )
    report = fit(
        model,
        normalized[balanced],
        anomaly[balanced],
        epochs=80,
        learning_rate=0.1,
    )
    # Deployment trick: fold the standardization into the first layer
    # so the published model consumes the raw reading columns —
    # (x - mean)/std @ W + b  ==  x @ (W/std) + (b - (mean/std) @ W).
    first = model.layers[0]
    folded_kernel = first.kernel / std[:, np.newaxis].astype(np.float32)
    folded_bias = first.bias - (mean / std).astype(np.float32) @ first.kernel
    first.set_weights(folded_kernel, folded_bias)
    print(
        f"anomaly model trained: loss {report.losses[0]:.3f} -> "
        f"{report.final_loss:.3f}"
    )
    publish_model(db, "anomaly", model)

    # One query: score -> filter -> join metadata -> aggregate.
    result = db.execute(
        "SELECT d.site AS site, COUNT(*) AS alarms, "
        "AVG(r.temperature) AS avg_temp "
        "FROM (SELECT id, device_id, temperature, prediction_0 "
        "      FROM readings "
        "      MODEL JOIN anomaly USING "
        "      (temperature, vibration, current)) AS r, "
        "     devices AS d "
        "WHERE r.device_id = d.device_id AND r.prediction_0 > 0.5 "
        "GROUP BY d.site ORDER BY site"
    )
    print("\nalarms per site (only this aggregate left the engine):")
    print(f"{'site':>6} {'alarms':>8} {'avg_temp':>10}")
    for site, alarms, avg_temp in result.rows:
        print(f"{site:>6} {alarms:>8} {avg_temp:>10.1f}")

    total_alarms = sum(row[1] for row in result.rows)
    true_anomalies = int(anomaly.sum())
    print(
        f"\n{total_alarms} alarms raised, {true_anomalies} planted "
        "anomalies in the data"
    )


if __name__ == "__main__":
    main()
