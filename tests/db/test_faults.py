"""Fault injection and resilient execution (docs/ROBUSTNESS.md).

Covers the injector itself (determinism, policies, env spec), the new
error taxonomy, query deadlines, morsel-level retry containment, the
variant fallback chain (bit-exactness included), cache integrity
quarantine, ODBC transfer retries — and a 100-query stress run under a
10% task-fault rate.
"""

import time

import numpy as np
import pytest

import repro
from repro.core.client.external import ExternalInference
from repro.core.client.odbc import OdbcConnection
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.resilience import ResilientModelJoin
from repro.db import faults
from repro.db.faults import FaultInjector, parse_spec
from repro.db.parallel import WorkerPool
from repro.db.resilience import (
    CancellationToken,
    CircuitBreaker,
    backoff_seconds,
    breaker_for,
)
from repro.device import SimulatedGpu
from repro.errors import (
    CacheCorruptionError,
    ExecutionError,
    FallbackExhaustedError,
    InjectedFaultError,
    QueryTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

PARALLELISM = 4


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test leaves the process fault-free."""
    yield
    faults.uninstall()


@pytest.fixture
def parallel_db():
    db = repro.connect(parallelism=PARALLELISM)
    load_iris_table(db, 2_000, num_partitions=PARALLELISM)
    return db


def sorted_column(result, name):
    return np.sort(result.column(name))


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_fault_pattern(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.raise_with_probability("worker.task", 0.3)
            fired = []
            for _ in range(200):
                try:
                    injector.fire("worker.task")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert any(pattern(7))
        assert not all(pattern(7))

    def test_sites_draw_independently(self):
        """Interleaving draws at another site must not shift a site's
        own deterministic sequence."""

        def pattern(interleave):
            injector = FaultInjector(seed=11)
            injector.raise_with_probability("device.gemm", 0.5)
            injector.raise_with_probability("odbc.fetch", 0.5)
            fired = []
            for _ in range(100):
                if interleave:
                    try:
                        injector.fire("odbc.fetch")
                    except InjectedFaultError:
                        pass
                try:
                    injector.fire("device.gemm")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
            return fired

        assert pattern(False) == pattern(True)

    def test_raise_once_counts_down(self):
        injector = FaultInjector()
        injector.raise_once("worker.task", count=2)
        for _ in range(2):
            with pytest.raises(InjectedFaultError) as info:
                injector.fire("worker.task")
            assert info.value.site == "worker.task"
        injector.fire("worker.task")  # spent: no raise
        stats = injector.statistics()["worker.task"]
        assert stats["raised"] == 2
        assert stats["visits"] == 3
        assert injector.total_faults() == 2

    def test_delay_policy_sleeps(self):
        injector = FaultInjector()
        injector.delay_ms("odbc.fetch", 30)
        started = time.perf_counter()
        injector.fire("odbc.fetch")
        assert time.perf_counter() - started >= 0.02
        assert injector.statistics()["odbc.fetch"]["delayed"] == 1

    def test_corrupt_policy_answers_corrupts_not_fire(self):
        injector = FaultInjector()
        injector.corrupt_payload("cache.load")
        injector.fire("cache.load")  # corrupt policies never raise
        assert injector.corrupts("cache.load")

    def test_unarmed_site_is_silent(self):
        injector = FaultInjector()
        injector.fire("worker.task")
        assert not injector.corrupts("cache.load")

    def test_parse_spec_full_grammar(self):
        injector = parse_spec(
            "seed=5, worker.task=prob:0.25, odbc.fetch=once:3,"
            "device.gemm=delay:12:0.5, cache.load=corrupt:0.1"
        )
        assert injector.seed == 5
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                injector.fire("odbc.fetch")
        injector.fire("odbc.fetch")
        stats = injector.statistics()
        assert "worker.task" in stats
        assert "delay(12.0ms, p=0.5)" in stats["device.gemm"]["policies"]
        assert "corrupt(p=0.1)" in stats["cache.load"]["policies"]

    def test_parse_spec_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_spec("worker.task")
        with pytest.raises(ReproError):
            parse_spec("worker.task=explode")

    def test_env_hook_installs_and_uninstalls(self):
        assert faults.install_from_env({}) is None
        assert faults.ACTIVE is None
        injector = faults.install_from_env(
            {"REPRO_FAULTS": "seed=3,worker.task=once:1"}
        )
        assert faults.ACTIVE is injector
        assert injector.seed == 3
        faults.uninstall()
        assert faults.ACTIVE is None

    def test_active_context_manager_scopes_installation(self):
        with faults.active(FaultInjector()) as injector:
            assert faults.ACTIVE is injector
        assert faults.ACTIVE is None


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_everything_lands_under_repro_error(self):
        for error_type in (
            QueryTimeoutError,
            WorkerCrashError,
            FallbackExhaustedError,
            CacheCorruptionError,
            InjectedFaultError,
        ):
            assert issubclass(error_type, ReproError)

    def test_execution_errors_stay_execution_errors(self):
        assert issubclass(QueryTimeoutError, ExecutionError)
        assert issubclass(WorkerCrashError, ExecutionError)

    def test_injected_fault_carries_site(self):
        error = InjectedFaultError("device.gemm")
        assert error.site == "device.gemm"
        assert "device.gemm" in str(error)


# ----------------------------------------------------------------------
# resilience primitives
# ----------------------------------------------------------------------
class TestCancellationToken:
    def test_expires_and_raises(self):
        token = CancellationToken.with_timeout(0.0)
        assert token.expired
        with pytest.raises(QueryTimeoutError):
            token.check()

    def test_unexpired_token_passes(self):
        token = CancellationToken.with_timeout(60.0)
        token.check()
        assert token.remaining_seconds() > 0

    def test_explicit_cancel(self):
        token = CancellationToken()
        token.check()
        token.cancel("user abort")
        with pytest.raises(QueryTimeoutError, match="user abort"):
            token.check()


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=10.0, clock=lambda: clock[0]
        )
        assert not breaker.is_open
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.trips == 1
        clock[0] = 11.0  # cool-down passed: half-open probe allowed
        assert not breaker.is_open
        breaker.record_failure()  # probe failed: open again
        assert breaker.is_open
        clock[0] = 22.0
        assert not breaker.is_open
        breaker.record_success()
        assert not breaker.is_open

    def test_breaker_for_attaches_lazily(self):
        device = SimulatedGpu()
        assert breaker_for(device) is breaker_for(device)

    def test_backoff_doubles_and_caps(self):
        assert backoff_seconds(1, base=0.01, cap=1.0) == 0.01
        assert backoff_seconds(2, base=0.01, cap=1.0) == 0.02
        assert backoff_seconds(20, base=0.01, cap=1.0) == 1.0


# ----------------------------------------------------------------------
# worker pool containment
# ----------------------------------------------------------------------
class TestWorkerPoolContainment:
    def test_run_tasks_chains_worker_identity(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ValueError, match="boom") as info:
                pool.run_tasks(
                    [lambda: 1, lambda: (_ for _ in ()).throw(
                        ValueError("boom")
                    )]
                )
            cause = info.value.__cause__
            assert isinstance(cause, WorkerCrashError)
            assert "task 1 of 2" in str(cause)
            assert "worker-" in str(cause)
        finally:
            pool.shutdown()

    def test_outcomes_capture_instead_of_raising(self):
        pool = WorkerPool(2)
        try:
            outcomes = pool.run_task_outcomes(
                [lambda: "ok", lambda: (_ for _ in ()).throw(
                    RuntimeError("bad")
                )]
            )
            assert outcomes[0].result == "ok"
            assert isinstance(outcomes[1].error, RuntimeError)
            assert outcomes[1].worker.startswith("worker-")
            # the pool survived the crash
            assert pool.run_tasks([lambda: 1, lambda: 2]) == [1, 2]
        finally:
            pool.shutdown()

    def test_on_error_hook_runs_on_failure(self):
        pool = WorkerPool(2)
        seen = []
        try:
            pool.run_task_outcomes(
                [lambda: (_ for _ in ()).throw(ValueError("x"))],
                on_error=lambda outcome: seen.append(outcome.worker),
            )
            assert len(seen) == 1
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent_and_bounded(self):
        pool = WorkerPool(3)
        assert pool.shutdown(drain_timeout=5.0) is True
        assert pool.shutdown(drain_timeout=5.0) is True
        assert pool.undrained == []
        with pytest.raises(ExecutionError, match="shut down"):
            pool.run_tasks([lambda: 1])


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestQueryDeadlines:
    def test_expired_deadline_raises_and_counts(self, parallel_db):
        db = parallel_db
        with pytest.raises(QueryTimeoutError):
            db.execute("SELECT sepal_length FROM iris", timeout_seconds=0.0)
        assert db.metrics.counter("query.timeouts").value == 1

    def test_parallel_timeout_drains_pool_cleanly(self, parallel_db):
        db = parallel_db
        with pytest.raises(QueryTimeoutError):
            db.execute(
                "SELECT sepal_length + sepal_width AS s FROM iris",
                parallel=True,
                timeout_seconds=0.0,
            )
        # the pool is immediately reusable
        result = db.execute("SELECT sepal_length + sepal_width AS s FROM iris", parallel=True)
        assert result.row_count == 2_000

    def test_generous_deadline_does_not_fire(self, parallel_db):
        db = parallel_db
        result = db.execute(
            "SELECT sepal_length FROM iris", parallel=True, timeout_seconds=60.0
        )
        assert result.row_count == 2_000
        assert db.metrics.counter("query.timeouts").value == 0


# ----------------------------------------------------------------------
# morsel/task retry
# ----------------------------------------------------------------------
class TestPipelineRetry:
    def test_task_crash_retried_to_success(self, parallel_db):
        db = parallel_db
        reference = sorted_column(
            db.execute("SELECT sepal_length + sepal_width AS s FROM iris"), "s"
        )
        with faults.active(FaultInjector(seed=1)) as injector:
            injector.raise_once("worker.task", count=1)
            result = db.execute(
                "SELECT sepal_length + sepal_width AS s FROM iris", parallel=True
            )
        assert np.array_equal(sorted_column(result, "s"), reference)
        assert db.metrics.counter("query.retries").value >= 1
        assert db.metrics.counter("worker.crashes").value >= 1

    def test_morsel_crash_requeues_without_losing_rows(self, parallel_db):
        db = parallel_db
        reference = sorted_column(
            db.execute("SELECT sepal_length + sepal_width AS s FROM iris"), "s"
        )
        with faults.active(FaultInjector(seed=2)) as injector:
            injector.raise_once("worker.morsel", count=1)
            result = db.execute(
                "SELECT sepal_length + sepal_width AS s FROM iris", parallel=True
            )
        assert np.array_equal(sorted_column(result, "s"), reference)
        assert db.metrics.counter("query.retries").value >= 1

    def test_retry_exhaustion_chains_task_identity(self, parallel_db):
        db = parallel_db
        with faults.active(FaultInjector(seed=3)) as injector:
            injector.raise_with_probability("worker.task", 1.0)
            with pytest.raises(InjectedFaultError) as info:
                db.execute("SELECT sepal_length FROM iris", parallel=True)
        cause = info.value.__cause__
        assert isinstance(cause, WorkerCrashError)
        assert "attempt" in str(cause)
        # pool healthy after exhaustion
        result = db.execute("SELECT sepal_length FROM iris", parallel=True)
        assert result.row_count == 2_000

    def test_modeljoin_build_crash_retries_whole_group(self, parallel_db):
        db = parallel_db
        model = make_dense_model(8, 2, seed=5)
        publish_model(
            db, "rclf", model, model_table_partitions=PARALLELISM
        )
        runner = NativeModelJoin(db, "rclf")
        columns = list(FEATURE_COLUMNS)
        reference = runner.predict("iris", "id", columns, parallel=False)
        db.model_cache.clear()
        with faults.active(FaultInjector(seed=4)) as injector:
            injector.raise_once("modeljoin.build", count=1)
            faulted = runner.predict("iris", "id", columns, parallel=True)
        assert np.array_equal(faulted, reference)
        assert db.metrics.counter("query.retries").value >= 1


# ----------------------------------------------------------------------
# variant fallback
# ----------------------------------------------------------------------
class TestVariantFallback:
    def test_gpu_kernel_fault_falls_back_bit_exact(self):
        db = repro.connect()
        dataset = load_iris_table(db, 1_000)
        model = make_dense_model(8, 2, seed=6)
        publish_model(db, "gclf", model)
        columns = list(FEATURE_COLUMNS)
        healthy = NativeModelJoin(
            db, "gclf", device=SimulatedGpu()
        ).predict("iris", "id", columns)
        db.model_cache.clear()
        with faults.active(FaultInjector(seed=7)) as injector:
            injector.raise_once("device.gemm", count=1)
            runner = NativeModelJoin(db, "gclf", device=SimulatedGpu())
            faulted = runner.predict("iris", "id", columns)
        assert np.array_equal(faulted, healthy)
        assert db.metrics.counter("fallback.engaged").value >= 1
        assert db.metrics.counter("fallback.device").value >= 1
        assert any("->cpu" in note for plan in runner.last_plans
                   for note in plan.fallbacks)
        np.testing.assert_allclose(
            faulted, model.predict(dataset.features), atol=1e-4
        )

    def test_circuit_breaker_skips_sick_device_up_front(self):
        db = repro.connect()
        load_iris_table(db, 500)
        model = make_dense_model(4, 2, seed=8)
        publish_model(db, "bclf", model)
        gpu = SimulatedGpu()
        breaker = breaker_for(gpu)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        runner = NativeModelJoin(db, "bclf", device=gpu)
        predictions = runner.predict(
            "iris", "id", list(FEATURE_COLUMNS)
        )
        assert predictions.shape == (500, model.output_width)
        assert db.metrics.counter("fallback.circuit-breaker").value >= 1
        assert any(
            "circuit" in note or "->cpu" in note
            for plan in runner.last_plans
            for note in plan.fallbacks
        )

    def test_resilient_chain_degrades_to_ml_to_sql(self):
        db = repro.connect()
        dataset = load_iris_table(db, 500)
        model = make_dense_model(6, 2, seed=9)
        publish_model(db, "cclf", model)
        resilient = ResilientModelJoin(db, "cclf", model=model)
        with faults.active(FaultInjector(seed=10)) as injector:
            injector.raise_with_probability("modeljoin.build", 1.0)
            predictions = resilient.predict(
                "iris", "id", list(FEATURE_COLUMNS)
            )
        assert resilient.engaged  # the chain did engage
        assert db.metrics.counter("fallback.variant").value >= 1
        np.testing.assert_allclose(
            predictions, model.predict(dataset.features), atol=1e-4
        )

    def test_resilient_chain_exhaustion(self):
        db = repro.connect()
        load_iris_table(db, 200)
        model = make_dense_model(4, 2, seed=11)
        publish_model(db, "xclf", model)
        resilient = ResilientModelJoin(
            db,
            "xclf",
            model=model,
            enable_mltosql=False,
            enable_runtime_api=False,
        )
        with faults.active(FaultInjector(seed=12)) as injector:
            injector.raise_with_probability("modeljoin.build", 1.0)
            with pytest.raises(FallbackExhaustedError) as info:
                resilient.predict("iris", "id", list(FEATURE_COLUMNS))
        assert isinstance(info.value.__cause__, InjectedFaultError)

    def test_external_transfer_retries_then_degrades(self):
        db = repro.connect()
        dataset = load_iris_table(db, 300)
        model = make_dense_model(4, 2, seed=13)
        external = ExternalInference(db, model)
        with faults.active(FaultInjector(seed=14)) as injector:
            injector.raise_once("odbc.fetch", count=2)
            report = external.run("iris", "id", list(FEATURE_COLUMNS))
        # two injected failures, third attempt succeeded
        assert external.connection.last_stats.attempts == 3
        assert external.connection.last_stats.retries == 2
        assert not external.degraded
        np.testing.assert_allclose(
            report.predictions, model.predict(dataset.features), atol=1e-4
        )
        with faults.active(FaultInjector(seed=15)) as injector:
            injector.raise_with_probability("odbc.fetch", 1.0)
            report = external.run("iris", "id", list(FEATURE_COLUMNS))
        assert external.degraded
        assert db.metrics.counter("fallback.transfer").value == 1
        np.testing.assert_allclose(
            report.predictions, model.predict(dataset.features), atol=1e-4
        )


# ----------------------------------------------------------------------
# ODBC transfer resilience
# ----------------------------------------------------------------------
class TestOdbcRetries:
    def test_retry_exhaustion_raises_injected_fault(self):
        db = repro.connect()
        load_iris_table(db, 100)
        connection = OdbcConnection(db, max_retries=2)
        with faults.active(FaultInjector(seed=16)) as injector:
            injector.raise_with_probability("odbc.fetch", 1.0)
            with pytest.raises(InjectedFaultError):
                connection.fetch_arrays("SELECT id FROM iris")

    def test_deadline_cuts_retry_loop(self):
        db = repro.connect()
        load_iris_table(db, 100)
        connection = OdbcConnection(
            db, timeout_seconds=0.0, max_retries=50
        )
        with faults.active(FaultInjector(seed=17)) as injector:
            injector.raise_with_probability("odbc.fetch", 1.0)
            with pytest.raises(QueryTimeoutError):
                connection.fetch_arrays("SELECT id FROM iris")

    def test_upload_retries_without_double_insert(self):
        db = repro.connect()
        db.execute("CREATE TABLE sink (id INTEGER, v FLOAT)")
        connection = OdbcConnection(db)
        arrays = {
            "id": np.arange(10, dtype=np.int64),
            "v": np.ones(10, dtype=np.float32),
        }
        with faults.active(FaultInjector(seed=18)) as injector:
            injector.raise_once("odbc.fetch", count=1)
            stats = connection.upload_arrays("sink", arrays)
        assert stats.attempts == 2
        assert db.execute("SELECT id FROM sink").row_count == 10


# ----------------------------------------------------------------------
# cache integrity
# ----------------------------------------------------------------------
class TestCacheIntegrity:
    def _build_once(self, db, name, model):
        publish_model(db, name, model)
        runner = NativeModelJoin(db, name)
        return runner.predict("iris", "id", list(FEATURE_COLUMNS))

    def test_injected_corruption_quarantines_and_rebuilds(self):
        db = repro.connect()
        load_iris_table(db, 500)
        model = make_dense_model(6, 2, seed=19)
        first = self._build_once(db, "qclf", model)
        assert len(db.model_cache) == 1
        with faults.active(FaultInjector(seed=20)) as injector:
            injector.corrupt_payload("cache.load", probability=1.0)
            runner = NativeModelJoin(db, "qclf")
            second = runner.predict("iris", "id", list(FEATURE_COLUMNS))
        assert np.array_equal(first, second)
        stats = db.model_cache.statistics()
        assert stats["corruptions"] == 1
        assert db.metrics.counter("cache.corruption").value == 1
        # the rebuild repopulated the cache with a verified entry
        third = NativeModelJoin(db, "qclf").predict(
            "iris", "id", list(FEATURE_COLUMNS)
        )
        assert np.array_equal(first, third)
        assert db.model_cache.statistics()["corruptions"] == 1

    def test_manual_corruption_detected_without_faults(self):
        db = repro.connect()
        load_iris_table(db, 300)
        model = make_dense_model(4, 2, seed=21)
        first = self._build_once(db, "mclf", model)
        entry = next(iter(db.model_cache._entries.values()))
        entry.layers[0].kernel[0, 0] += 1.0  # silent bit rot
        runner = NativeModelJoin(db, "mclf")
        second = runner.predict("iris", "id", list(FEATURE_COLUMNS))
        assert np.array_equal(first, second)
        assert db.model_cache.statistics()["corruptions"] == 1


# ----------------------------------------------------------------------
# stress: sustained fault rate
# ----------------------------------------------------------------------
class TestChaosStress:
    def test_100_queries_at_10_percent_fault_rate(self):
        db = repro.connect(parallelism=PARALLELISM, task_retries=6)
        load_iris_table(db, 1_000, num_partitions=PARALLELISM)
        reference = sorted_column(
            db.execute("SELECT sepal_length + sepal_width AS s FROM iris"), "s"
        )
        completed = 0
        with faults.active(FaultInjector(seed=42)) as injector:
            injector.raise_with_probability("worker.task", 0.1)
            for _ in range(100):
                result = db.execute(
                    "SELECT sepal_length + sepal_width AS s FROM iris", parallel=True
                )
                assert np.array_equal(
                    sorted_column(result, "s"), reference
                )
                completed += 1
        assert completed == 100
        assert injector.statistics()["worker.task"]["raised"] > 0
        assert db.metrics.counter("query.retries").value >= 1
