"""Python UDF machinery: registration, marshalling, statistics."""

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.types import SqlType
from repro.db.udf import PythonUdf
from repro.errors import ExecutionError


def add_udf(vectorized=True, marshal=True):
    if vectorized:

        def add(xs, ys):
            return [x + y for x, y in zip(xs, ys)]

    else:

        def add(x, y):
            return x + y

    return PythonUdf(
        "my_add",
        2,
        add,
        result_type=SqlType.DOUBLE,
        vectorized=vectorized,
        marshal=marshal,
    )


@pytest.fixture
def udf_db(db: Database) -> Database:
    db.execute("CREATE TABLE t (a FLOAT, b FLOAT)")
    db.execute("INSERT INTO t VALUES (1.0, 2.0), (3.0, 4.0), (5.0, 6.0)")
    return db


class TestUdfCall:
    def test_vectorized_direct_call(self):
        udf = add_udf()
        out = udf(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        assert out.tolist() == [11.0, 22.0]
        assert udf.statistics.calls == 1
        assert udf.statistics.rows == 2

    def test_per_tuple_counts_calls(self):
        udf = add_udf(vectorized=False)
        out = udf(np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.0, 1.0]))
        assert out.tolist() == [2.0, 3.0, 4.0]
        assert udf.statistics.calls == 3

    def test_wrong_arity(self):
        udf = add_udf()
        with pytest.raises(ExecutionError):
            udf(np.array([1.0]))

    def test_wrong_result_length(self):
        udf = PythonUdf(
            "bad", 1, lambda xs: [1.0], result_type=SqlType.DOUBLE
        )
        with pytest.raises(ExecutionError):
            udf(np.array([1.0, 2.0]))

    def test_marshal_false_passes_arrays(self):
        captured = {}

        def probe(xs):
            captured["type"] = type(xs)
            return xs

        udf = PythonUdf("probe", 1, probe, marshal=False)
        udf(np.array([1.0]))
        assert captured["type"] is np.ndarray

    def test_marshal_true_passes_lists(self):
        captured = {}

        def probe(xs):
            captured["type"] = type(xs)
            return xs

        udf = PythonUdf("probe2", 1, probe, marshal=True)
        udf(np.array([1.0]))
        assert captured["type"] is list


class TestUdfInSql:
    def test_registered_udf_callable_from_sql(self, udf_db):
        udf_db.register_udf(add_udf())
        result = udf_db.execute(
            "SELECT my_add(a, b) AS s FROM t ORDER BY s"
        )
        assert [row[0] for row in result.rows] == [3.0, 7.0, 11.0]

    def test_udf_composes_with_expressions(self, udf_db):
        udf_db.register_udf(add_udf())
        result = udf_db.execute(
            "SELECT my_add(a, b) * 2 AS s2 FROM t WHERE a > 2 ORDER BY s2"
        )
        assert [row[0] for row in result.rows] == [14.0, 22.0]

    def test_vectorized_udf_called_once_per_vector(self, db):
        db.execute("CREATE TABLE big (a FLOAT, b FLOAT)")
        n = 3000  # ~3 vectors at the default vector size of 1024
        db.table("big").append_columns(
            a=np.ones(n, dtype=np.float32),
            b=np.ones(n, dtype=np.float32),
        )
        udf = db.register_udf(add_udf())
        db.execute("SELECT my_add(a, b) AS s FROM big")
        assert udf.statistics.rows == n
        assert udf.statistics.calls == 3
