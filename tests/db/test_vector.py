import numpy as np
import pytest

from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch, concat_batches, rebatch
from repro.errors import ExecutionError


@pytest.fixture
def schema() -> Schema:
    return Schema.of(("id", SqlType.INTEGER), ("v", SqlType.FLOAT))


@pytest.fixture
def batch(schema) -> VectorBatch:
    return VectorBatch.from_dict(
        schema,
        {"id": np.arange(6), "v": np.linspace(0, 1, 6)},
    )


class TestConstruction:
    def test_from_dict_coerces_types(self, batch):
        assert batch.column("v").dtype == np.float32
        assert batch.column("id").dtype == np.int64

    def test_ragged_batch_rejected(self, schema):
        with pytest.raises(ExecutionError):
            VectorBatch(
                schema,
                [np.arange(3), np.zeros(2, dtype=np.float32)],
            )

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(ExecutionError):
            VectorBatch(schema, [np.arange(3)])

    def test_empty(self, schema):
        empty = VectorBatch.empty(schema)
        assert len(empty) == 0
        assert empty.column("id").dtype == np.int64


class TestRowOperations:
    def test_filter(self, batch):
        mask = batch.column("id") % 2 == 0
        filtered = batch.filter(mask)
        assert filtered.column("id").tolist() == [0, 2, 4]

    def test_filter_requires_boolean(self, batch):
        with pytest.raises(ExecutionError):
            batch.filter(np.arange(6))

    def test_take_repeats_and_reorders(self, batch):
        taken = batch.take(np.array([5, 0, 0]))
        assert taken.column("id").tolist() == [5, 0, 0]

    def test_slice(self, batch):
        assert batch.slice(2, 4).column("id").tolist() == [2, 3]

    def test_slice_past_end(self, batch):
        assert len(batch.slice(4, 100)) == 2

    def test_to_rows(self, batch):
        rows = batch.to_rows()
        assert rows[0] == (0, 0.0)
        assert len(rows) == 6


class TestColumnOperations:
    def test_concat_columns(self, batch, schema):
        other = VectorBatch.from_dict(
            Schema.of(("w", SqlType.DOUBLE)), {"w": np.zeros(6)}
        )
        combined = batch.concat_columns(other)
        assert combined.schema.names == ("id", "v", "w")

    def test_concat_columns_length_mismatch(self, batch):
        other = VectorBatch.from_dict(
            Schema.of(("w", SqlType.DOUBLE)), {"w": np.zeros(3)}
        )
        with pytest.raises(ExecutionError):
            batch.concat_columns(other)

    def test_with_schema_relabels(self, batch):
        renamed = batch.with_schema(
            Schema.of(("a", SqlType.INTEGER), ("b", SqlType.FLOAT))
        )
        assert renamed.column("a").tolist() == batch.column("id").tolist()

    def test_nominal_bytes(self, batch):
        assert batch.nominal_bytes() == 6 * 8 + 6 * 4


class TestBatchHelpers:
    def test_concat_batches(self, schema, batch):
        combined = concat_batches(schema, [batch, batch])
        assert len(combined) == 12

    def test_concat_batches_empty(self, schema):
        assert len(concat_batches(schema, [])) == 0

    def test_rebatch_sizes(self, schema, batch):
        chunks = list(rebatch([batch, batch], schema, size=5))
        assert [len(chunk) for chunk in chunks] == [5, 5, 2]

    def test_rebatch_preserves_row_order(self, schema):
        batches = [
            VectorBatch.from_dict(
                schema,
                {
                    "id": np.arange(start, start + count),
                    "v": np.arange(start, start + count) * 0.5,
                },
            )
            for start, count in [(0, 3), (3, 7), (10, 1), (11, 9)]
        ]
        chunks = list(rebatch(batches, schema, size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 4, 4, 4]
        ids = np.concatenate([chunk.column("id") for chunk in chunks])
        assert ids.tolist() == list(range(20))

    def test_rebatch_streams_lazily(self, schema, batch):
        """Consumes input incrementally — no up-front concatenation."""
        pulled = []

        def tracked():
            for index in range(4):
                pulled.append(index)
                yield batch  # 6 rows each

        chunks = rebatch(tracked(), schema, size=6)
        assert pulled == []
        first = next(chunks)
        assert len(first) == 6
        assert pulled == [0]  # aligned batch passed straight through
        next(chunks)
        assert pulled == [0, 1]
        assert len(list(chunks)) == 2

    def test_rebatch_aligned_batches_not_copied(self, schema, batch):
        chunks = list(rebatch([batch], schema, size=len(batch)))
        assert chunks[0] is batch

    def test_rebatch_skips_empty_batches(self, schema, batch):
        chunks = list(
            rebatch(
                [VectorBatch.empty(schema), batch, VectorBatch.empty(schema)],
                schema,
                size=4,
            )
        )
        assert [len(chunk) for chunk in chunks] == [4, 2]

    def test_rebatch_rejects_nonpositive_size(self, schema, batch):
        with pytest.raises(ExecutionError):
            list(rebatch([batch], schema, size=0))
