"""Planner behaviour: pushdown, pruning ranges, strategy choices."""

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.planner import PlannerOptions


@pytest.fixture
def db_with_tables() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE fact (id INTEGER, node INTEGER, v FLOAT) "
        "SORTED BY (id)"
    )
    ids = np.arange(200, dtype=np.int64)
    db.table("fact").append_columns(
        id=ids, node=ids % 5, v=ids.astype(np.float32)
    )
    db.execute(
        "CREATE TABLE model (node_in INTEGER, node INTEGER, w FLOAT) "
        "SORTED BY (node)"
    )
    db.execute(
        "INSERT INTO model VALUES (0, 5, 0.5), (1, 5, 1.5), "
        "(0, 6, 2.5), (1, 6, 3.5)"
    )
    return db


class TestFilterPushdownAndPruning:
    def test_single_table_predicate_pushed_below_join(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT f.id FROM fact AS f, model AS m "
            "WHERE f.node = m.node_in AND m.node >= 5 AND m.node <= 5"
        )
        # The model filter must sit below the join, on the model branch
        # (lowered as a fused compiled kernel carrying the predicate).
        join_position = plan.index("HashJoin")
        filter_position = plan.index(
            "FusedPipeline(filter:", join_position
        )
        assert filter_position > join_position
        assert "prune: node in [5" in plan

    def test_range_extraction_on_scan(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT id FROM fact WHERE id BETWEEN 10 AND 20"
        )
        assert "prune: id in [10" in plan

    def test_equality_becomes_point_range(self, db_with_tables):
        plan = db_with_tables.explain("SELECT id FROM fact WHERE id = 7")
        assert "prune: id in [7.0, 7.0]" in plan

    def test_pruning_disabled_by_option(self):
        db = Database(
            planner_options=PlannerOptions(use_block_pruning=False)
        )
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert "prune" not in db.explain("SELECT a FROM t WHERE a > 0")

    def test_flipped_literal_comparison(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT id FROM fact WHERE 10 <= id"
        )
        assert "prune: id in [10" in plan


class TestJoinPlanning:
    def test_equi_join_uses_hash_join(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT f.id FROM fact AS f, model AS m WHERE f.node = m.node_in"
        )
        assert "HashJoin" in plan
        assert "CrossJoin" not in plan

    def test_no_predicate_uses_cross_join(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT f.id FROM fact AS f, model AS m"
        )
        assert "CrossJoin" in plan

    def test_non_equi_predicate_is_residual_filter(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT f.id FROM fact AS f, model AS m WHERE f.node < m.node_in"
        )
        assert "CrossJoin" in plan
        # residual predicate lowers as a fused kernel above the join
        assert "FusedPipeline(filter:" in plan or "Filter" in plan

    def test_fact_is_probe_side(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT f.id FROM fact AS f, model AS m WHERE f.node = m.node_in"
        )
        # Left child (listed first under HashJoin) must be the fact scan.
        lines = plan.splitlines()
        join_line = next(
            index for index, line in enumerate(lines) if "HashJoin" in line
        )
        assert "fact" in lines[join_line + 1] or "fact" in lines[join_line + 2]


class TestAggregationStrategy:
    def test_ordered_aggregation_on_sorted_input(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT id, SUM(v) AS s FROM fact GROUP BY id"
        )
        assert "OrderedAggregate" in plan

    def test_hash_aggregation_on_unsorted_key(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT node, SUM(v) AS s FROM fact GROUP BY node"
        )
        assert "HashAggregate" in plan

    def test_ordered_aggregation_disabled_by_option(self):
        db = Database(
            planner_options=PlannerOptions(use_ordered_aggregation=False)
        )
        db.execute("CREATE TABLE t (id INTEGER, v FLOAT) SORTED BY (id)")
        db.execute("INSERT INTO t VALUES (1, 1.0)")
        plan = db.explain("SELECT id, SUM(v) AS s FROM t GROUP BY id")
        assert "HashAggregate" in plan

    def test_redundant_order_by_elided(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT id FROM fact ORDER BY id"
        )
        assert "Sort" not in plan

    def test_required_sort_kept(self, db_with_tables):
        plan = db_with_tables.explain(
            "SELECT id FROM fact ORDER BY id DESC"
        )
        assert "Sort" in plan


class TestModelJoinPlanning:
    def test_model_join_without_factory_fails(self, db_with_tables):
        from repro.errors import PlanError

        with pytest.raises(PlanError, match="factory"):
            db_with_tables.execute("SELECT * FROM fact MODEL JOIN m")

    def test_model_join_unknown_model(self):
        import repro
        from repro.errors import CatalogError

        db = repro.connect()
        db.execute("CREATE TABLE t (a FLOAT)")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM t MODEL JOIN ghost")


class TestModelJoinPushdown:
    """Raven-style early pruning (paper §3): qualified predicates on
    the input flow run below the MODEL JOIN."""

    def _prepared(self):
        import numpy as np
        import repro
        from repro.core.registry import publish_model
        from repro.nn.layers import Dense
        from repro.nn.model import Sequential

        db = repro.connect()
        db.execute("CREATE TABLE f (id INTEGER, a FLOAT, b FLOAT)")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 2)).astype(np.float32)
        db.table("f").append_columns(
            id=np.arange(50), a=x[:, 0], b=x[:, 1]
        )
        model = Sequential([Dense(1, "sigmoid")], input_width=2, seed=0)
        publish_model(db, "clf", model)
        return db

    def test_qualified_predicate_pushed_below_inference(self):
        db = self._prepared()
        plan = db.explain(
            "SELECT f.id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b) WHERE f.id < 10"
        )
        lines = plan.splitlines()
        modeljoin_line = next(
            index for index, line in enumerate(lines) if "ModelJoin" in line
        )
        filter_line = next(
            index for index, line in enumerate(lines) if "Filter" in line
        )
        assert filter_line > modeljoin_line  # below = deeper in the tree

    def test_pushed_rows_never_inferred(self):
        db = self._prepared()
        plan, result = db.explain_analyze(
            "SELECT f.id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b) WHERE f.id < 10"
        )
        assert result.row_count == 10
        modeljoin_line = next(
            line for line in plan.splitlines() if "ModelJoin" in line
        )
        assert "[rows: 10]" in modeljoin_line

    def test_prediction_predicate_stays_above(self):
        db = self._prepared()
        plan = db.explain(
            "SELECT f.id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b) WHERE clf.prediction_0 > 0.5"
        )
        lines = plan.splitlines()
        modeljoin_line = next(
            index for index, line in enumerate(lines) if "ModelJoin" in line
        )
        filter_line = next(
            index for index, line in enumerate(lines) if "Filter" in line
        )
        assert filter_line < modeljoin_line  # above the operator

    def test_unqualified_predicate_pushed(self):
        db = self._prepared()
        plan, result = db.explain_analyze(
            "SELECT f.id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b) WHERE id < 10"
        )
        # The binder resolves unqualified names against the complete
        # scope before the rewrite rules run, so `id` is known to be
        # `f.id` and the predicate filters *before* the inference.
        assert result.row_count == 10
        modeljoin_line = next(
            line for line in plan.splitlines() if "ModelJoin" in line
        )
        assert "[rows: 10]" in modeljoin_line

    def test_results_unchanged_by_pushdown(self):
        db = self._prepared()
        pushed = db.execute(
            "SELECT f.id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b) WHERE f.id < 10 ORDER BY id"
        )
        unpushed = db.execute(
            "SELECT q.id, q.prediction_0 FROM "
            "(SELECT f.id AS id, prediction_0 FROM f MODEL JOIN clf "
            "USING (a, b)) AS q WHERE q.id < 10 ORDER BY id"
        )
        assert pushed.rows == unpushed.rows
