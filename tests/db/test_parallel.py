"""Partition-parallel execution: parallel == serial for the query
shapes the ModelJoin workloads use."""

import numpy as np
import pytest

from repro.db.engine import Database


@pytest.fixture
def pdb() -> Database:
    db = Database(parallelism=4)
    db.execute(
        "CREATE TABLE fact (id INTEGER, a FLOAT, b FLOAT) "
        "PARTITION BY (id) PARTITIONS 4 SORTED BY (id)"
    )
    n = 5000
    ids = np.arange(n, dtype=np.int64)
    db.table("fact").append_columns(
        id=ids,
        a=(ids % 7).astype(np.float32),
        b=(ids % 13).astype(np.float32),
    )
    db.execute("CREATE TABLE dim (k INTEGER, w FLOAT)")
    db.execute(
        "INSERT INTO dim VALUES (0, 1.0), (1, 2.0), (2, 3.0), "
        "(3, 4.0), (4, 5.0), (5, 6.0), (6, 7.0)"
    )
    return db


def rows_sorted(result):
    return sorted(result.rows)


class TestParallelEqualsSerial:
    def test_scan_filter_project(self, pdb):
        sql = "SELECT id, a * b AS ab FROM fact WHERE a > 3"
        assert rows_sorted(pdb.execute(sql)) == rows_sorted(
            pdb.execute(sql, parallel=True)
        )

    def test_join_with_broadcast_dim(self, pdb):
        sql = (
            "SELECT fact.id, dim.w FROM fact, dim "
            "WHERE fact.a = dim.k AND fact.id < 1000"
        )
        assert rows_sorted(pdb.execute(sql)) == rows_sorted(
            pdb.execute(sql, parallel=True)
        )

    def test_aggregation_grouped_by_partition_key(self, pdb):
        sql = "SELECT id, SUM(a + b) AS s FROM fact GROUP BY id"
        assert rows_sorted(pdb.execute(sql)) == rows_sorted(
            pdb.execute(sql, parallel=True)
        )

    def test_order_by_is_global(self, pdb):
        sql = "SELECT id FROM fact WHERE a = 1 ORDER BY id DESC LIMIT 5"
        serial = pdb.execute(sql).rows
        parallel = pdb.execute(sql, parallel=True).rows
        assert serial == parallel
        assert parallel == sorted(parallel, reverse=True)

    def test_limit_applied_after_merge(self, pdb):
        sql = "SELECT id FROM fact ORDER BY id LIMIT 7"
        assert pdb.execute(sql, parallel=True).rows == [
            (i,) for i in range(7)
        ]

    def test_distinct_rejected_in_parallel(self, pdb):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            pdb.execute("SELECT DISTINCT a FROM fact", parallel=True)

    def test_parallel_flag_noop_when_parallelism_one(self):
        db = Database(parallelism=1)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT a FROM t", parallel=True).rows == [(1,)]

    def test_grouped_by_sorted_key_streams_with_zero_buffering(self, pdb):
        # Group keys covered by the partition sort key use the ordered
        # aggregate, which holds no buffered input (paper Section 4.4).
        pdb.execute(
            "SELECT id, SUM(a) AS s FROM fact GROUP BY id",
            parallel=True,
        )
        assert pdb.last_profile.peak_memory_bytes == 0

    def test_join_build_accounted_across_pipelines(self, pdb):
        pdb.execute(
            "SELECT fact.id, dim.w FROM fact, dim WHERE fact.a = dim.k",
            parallel=True,
        )
        assert pdb.last_profile.peak_memory_bytes > 0
