"""Plan fragments and expression trees must pickle (satellite: the
shard wire protocol ships AST fragments between processes)."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.db.column import BlockBuilder
from repro.db.expressions import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.db.schema import Column, Schema
from repro.db.shard.fragments import plan_select_fragments
from repro.db.sql.parser import parse_statement
from repro.db.types import SqlType
from repro.db.vector import VectorBatch


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


names = st.sampled_from(["a", "b", "t.a", "t.b", "k"])


@st.composite
def expressions(draw, depth=3):
    if depth == 0:
        return draw(
            st.one_of(
                st.builds(ColumnRef, names),
                st.builds(
                    Literal,
                    st.one_of(
                        st.integers(-100, 100),
                        st.floats(
                            allow_nan=False, allow_infinity=False
                        ),
                        st.text(max_size=5),
                    ),
                ),
            )
        )
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return draw(
        st.one_of(
            st.builds(
                BinaryOp,
                st.sampled_from(["+", "-", "*", "/", "=", "<", ">"]),
                st.just(left),
                st.just(right),
            ),
            st.builds(
                FunctionCall,
                st.sampled_from(["SUM", "COUNT", "MIN", "MAX", "ABS"]),
                st.just((left,)),
            ),
        )
    )


class TestExpressionPickle:
    @settings(max_examples=50, deadline=None)
    @given(expressions())
    def test_expression_roundtrip(self, expression):
        assert roundtrip(expression) == expression

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(
            [
                "SELECT a, b FROM t WHERE a > 3",
                "SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING SUM(b) > 1",
                "SELECT DISTINCT a FROM t ORDER BY a LIMIT 3",
                "SELECT t.a, AVG(t.b) AS m FROM t GROUP BY t.a",
                "SELECT a + b AS c FROM t WHERE a = 1 AND b < 2",
            ]
        )
    )
    def test_statement_roundtrip(self, sql):
        statement = parse_statement(sql)
        assert roundtrip(statement) == statement


class TestEngineObjectPickle:
    def test_block_builder_drops_lock(self):
        schema = Schema((Column("x", SqlType.INTEGER),))
        builder = BlockBuilder(schema)
        builder.append(
            VectorBatch(schema, [np.array([1, 2, 3], dtype=np.int64)])
        )
        clone = roundtrip(builder)
        # the lock is rebuilt, the data survives
        assert clone._lock is not builder._lock
        assert clone.row_count == builder.row_count
        np.testing.assert_array_equal(
            clone.all_blocks()[0].arrays[0],
            builder.all_blocks()[0].arrays[0],
        )

    def test_table_with_rows_roundtrips(self):
        schema = Schema(
            (
                Column("k", SqlType.INTEGER),
                Column("v", SqlType.DOUBLE),
            )
        )
        db = repro.Database()
        table = db.create_table("t", schema, partition_key="k")
        table.append_batch(
            VectorBatch.from_dict(
                schema,
                {
                    "k": np.arange(8, dtype=np.int64),
                    "v": np.arange(8, dtype=np.float64),
                },
            )
        )
        clone = roundtrip(table)
        assert clone.row_count == table.row_count

    def test_vector_batch_roundtrips(self):
        schema = Schema((Column("x", SqlType.DOUBLE),))
        batch = VectorBatch(
            schema, [np.array([1.0, 2.5], dtype=np.float64)]
        )
        clone = roundtrip(batch)
        np.testing.assert_array_equal(clone.arrays[0], batch.arrays[0])


class TestFragmentPickle:
    @pytest.fixture
    def sharded(self):
        db = repro.connect(shards=2)
        db.execute(
            "CREATE TABLE t (k INTEGER, g INTEGER, v DOUBLE) "
            "PARTITION BY (k)"
        )
        yield db
        db.close()

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT k, v FROM t WHERE v > 0.5",
            "SELECT k, SUM(v) AS s FROM t GROUP BY k",
            "SELECT g, AVG(v) AS m, COUNT(v) AS c FROM t GROUP BY g",
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM t "
            "GROUP BY g HAVING COUNT(v) > 1",
        ],
    )
    def test_shard_statement_picklable(self, sharded, sql):
        statement = parse_statement(sql)
        fragment = plan_select_fragments(statement, sharded.catalog)
        assert fragment is not None
        clone = roundtrip(fragment.shard_statement)
        assert clone == fragment.shard_statement
