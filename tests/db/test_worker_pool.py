"""Persistent worker pool and morsel-driven scheduling."""

import threading

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.parallel import (
    MorselSource,
    WorkerPool,
    current_worker_name,
)
from repro.db.profiler import Stopwatch
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import ExecutionError


def make_table(rows: int, partitions: int) -> Table:
    table = Table(
        "t",
        Schema.of(("id", SqlType.INTEGER)),
        num_partitions=partitions,
        partition_key="id",
    )
    table.append_columns(id=np.arange(rows, dtype=np.int64))
    return table


class TestWorkerPool:
    def test_results_in_task_order(self):
        pool = WorkerPool(4)
        results = pool.run_tasks([lambda i=i: i * 10 for i in range(4)])
        assert results == [0, 10, 20, 30]
        pool.shutdown()

    def test_reused_across_queries(self):
        pool = WorkerPool(2)
        for round_number in range(20):
            results = pool.run_tasks(
                [lambda: round_number, lambda: round_number + 1]
            )
            assert results == [round_number, round_number + 1]
        pool.shutdown()

    def test_tasks_run_on_named_workers(self):
        pool = WorkerPool(3)
        names = pool.run_tasks([current_worker_name] * 3)
        assert sorted(names) == ["worker-0", "worker-1", "worker-2"]
        assert current_worker_name() == "main"
        pool.shutdown()

    def test_error_propagates_after_all_tasks_finish(self):
        pool = WorkerPool(2)

        def boom():
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            pool.run_tasks([boom, lambda: 1])
        # The pool survives a failed query.
        assert pool.run_tasks([lambda: 2, lambda: 3]) == [2, 3]
        pool.shutdown()

    def test_too_many_tasks_rejected(self):
        pool = WorkerPool(2)
        with pytest.raises(ExecutionError):
            pool.run_tasks([lambda: None] * 3)
        pool.shutdown()

    def test_barrier_coupled_tasks_do_not_deadlock(self):
        pool = WorkerPool(4)
        barrier = threading.Barrier(4)
        results = pool.run_tasks([barrier.wait] * 4)
        assert sorted(results) == [0, 1, 2, 3]
        pool.shutdown()

    def test_shutdown_is_idempotent_and_final(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(ExecutionError):
            pool.run_tasks([lambda: 1])


class TestMorselSource:
    def test_covers_every_row_exactly_once(self):
        table = make_table(10_000, 4)
        source = MorselSource(table, morsel_rows=512)
        seen = 0
        while True:
            morsel = source.next_morsel()
            if morsel is None:
                break
            assert morsel.row_stop > morsel.row_start
            seen += morsel.row_stop - morsel.row_start
        assert seen == 10_000
        assert source.dispensed == len(source)

    def test_thread_safe_dispensing(self):
        table = make_table(20_000, 4)
        source = MorselSource(table, morsel_rows=128)
        counts = [0] * 8

        def drain(slot: int) -> None:
            while source.next_morsel() is not None:
                counts[slot] += 1

        threads = [
            threading.Thread(target=drain, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(counts) == len(source)


class TestMorselDrivenQueries:
    @pytest.fixture
    def pdb(self) -> Database:
        db = Database(parallelism=4)
        db.execute(
            "CREATE TABLE fact (id BIGINT, v FLOAT) "
            "PARTITION BY (id) PARTITIONS 4"
        )
        n = 30_000
        db.table("fact").append_columns(
            id=np.arange(n, dtype=np.int64),
            v=np.arange(n, dtype=np.float32),
        )
        return db

    def test_streaming_query_reports_morsel_counters(self, pdb):
        result = pdb.execute(
            "SELECT id, v FROM fact WHERE v < 20000", parallel=True
        )
        assert len(result.rows) == 20_000
        counters = pdb.last_profile.counters.snapshot()
        assert counters["morsels"] > 1
        per_worker = sum(
            count
            for name, count in counters.items()
            if name.startswith("morsels.")
        )
        assert per_worker == counters["morsels"]

    def test_streaming_results_match_serial(self, pdb):
        sql = "SELECT id, v * 2 AS w FROM fact WHERE v > 100 AND v < 25000"
        serial = sorted(pdb.execute(sql).rows)
        parallel = sorted(pdb.execute(sql, parallel=True).rows)
        assert serial == parallel

    def test_blocking_plans_fall_back_to_static_binding(self, pdb):
        result = pdb.execute(
            "SELECT id, SUM(v) AS s FROM fact GROUP BY id LIMIT 5",
            parallel=True,
        )
        assert len(result.rows) == 5
        counters = pdb.last_profile.counters.snapshot()
        # Aggregation is partition-scoped: morsel stealing would split
        # groups across workers, so the rewrite must not engage.
        assert "morsels" not in counters

    def test_engine_owns_one_pool_across_queries(self, pdb):
        pool = pdb.worker_pool
        pdb.execute("SELECT id FROM fact WHERE id < 10", parallel=True)
        assert pdb.worker_pool is pool
        pdb.close()
        with pytest.raises(ExecutionError):
            pool.run_tasks([lambda: 1])


class TestStopwatchThreadSafety:
    def test_concurrent_adds_do_not_lose_updates(self):
        stopwatch = Stopwatch()

        def hammer():
            for _ in range(1000):
                stopwatch.add("phase", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stopwatch.phases["phase"] == pytest.approx(8.0)
        assert stopwatch.total() == pytest.approx(8.0)
