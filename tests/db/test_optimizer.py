"""Golden plans for the logical optimizer and its rewrite rules.

Each golden test pins the rendered logical plan, the recorded rule
firings and the selected ModelJoin variant for one query shape; the
property test at the end re-runs every query with the rewrite rules
disabled and requires bit-exact results.
"""

from textwrap import dedent

import numpy as np
import pytest

import repro
from repro.core.registry import publish_model
from repro.db.planner import PlannerOptions
from repro.db.sql.parser import parse_statement
from repro.workloads.iris import load_iris_table
from repro.workloads.models import make_dense_model, make_lstm_model
from repro.workloads.timeseries import load_windowed_series_table

USING = "sepal_length, sepal_width, petal_length, petal_width"

QUERIES = {
    "dense": f"SELECT * FROM iris MODEL JOIN clf USING ({USING})",
    "lstm": (
        "SELECT id, prediction_0 FROM sinus_windows "
        "MODEL JOIN seq USING (x1, x2, x3)"
    ),
    "filtered": (
        f"SELECT id, prediction_0 FROM iris MODEL JOIN clf "
        f"USING ({USING}) WHERE id < 100"
    ),
    "projected": (
        f"SELECT id, prediction_0 FROM iris MODEL JOIN clf USING ({USING})"
    ),
    "joined": (
        f"SELECT i.id, d.grp, prediction_0 FROM iris i MODEL JOIN clf "
        f"USING ({USING}) JOIN dims d ON i.id = d.id"
    ),
    "override": (
        f"SELECT id, prediction_0 FROM iris MODEL JOIN clf "
        f"USING ({USING}) VARIANT 'native-gpu'"
    ),
    "scan_filter": (
        "SELECT id, sepal_length FROM iris WHERE id >= 20 AND id < 40"
    ),
    "aggregate": (
        "SELECT species, COUNT(*), AVG(sepal_length) FROM iris "
        "GROUP BY species"
    ),
    "orderby": "SELECT id FROM iris ORDER BY id LIMIT 7",
    "folded": "SELECT id FROM iris WHERE id < 10 + 5",
}


def build_database():
    database = repro.connect()
    load_iris_table(database, 200)
    publish_model(database, "clf", make_dense_model(8, 2, seed=3))
    load_windowed_series_table(database, 100, time_steps=3)
    publish_model(database, "seq", make_lstm_model(8, time_steps=3, seed=4))
    database.execute(
        "CREATE TABLE dims (id INTEGER, grp INTEGER) SORTED BY (id)"
    )
    ids = np.arange(200, dtype=np.int64)
    database.table("dims").append_columns(
        id=ids, grp=(ids % 4).astype(np.int64)
    )
    return database


@pytest.fixture(scope="module")
def db():
    return build_database()


def prepare(db, name):
    return db._planner().prepare(parse_statement(QUERIES[name]))


def firings_of(prepared) -> list[str]:
    return [f"{f.rule}: {f.detail}" for f in prepared.firings]


def golden(text: str) -> str:
    return dedent(text).strip("\n")


class TestGoldenPlans:
    def test_dense_grid_model_join(self, db):
        prepared = prepare(db, "dense")
        assert prepared.explain_logical() == golden(
            """
            Project(id, sepal_length, sepal_width, petal_length, petal_width, species, prediction_0)  [~200 rows]
              ModelJoin(model=clf, inputs=[iris.sepal_length, iris.sepal_width, iris.petal_length, iris.petal_width], variant=native-cpu)  [~200 rows]
                Scan(iris)  [~200 rows]
            """
        )
        assert firings_of(prepared) == []
        (selection,) = prepared.selections
        assert selection.chosen == "native-cpu"
        assert "lowest predicted cost" in selection.reason
        # every implemented variant is scored
        assert len(selection.estimates) == 6

    def test_lstm_model_join(self, db):
        prepared = prepare(db, "lstm")
        assert prepared.explain_logical() == golden(
            """
            Project(id, prediction_0)  [~100 rows]
              ModelJoin(model=seq, inputs=[sinus_windows.x1, sinus_windows.x2, sinus_windows.x3], variant=native-cpu)  [~100 rows]
                Scan(sinus_windows)  [~100 rows]
            """
        )
        (selection,) = prepared.selections
        assert selection.chosen == "native-cpu"
        assert selection.tuples == 100

    def test_filtered_model_join_pushes_predicate(self, db):
        prepared = prepare(db, "filtered")
        assert prepared.explain_logical() == golden(
            """
            Project(id, prediction_0)  [~30 rows]
              ModelJoin(model=clf, inputs=[iris.sepal_length, iris.sepal_width, iris.petal_length, iris.petal_width], variant=native-cpu)  [~30 rows]
                Filter((iris.id < 100))  [~30 rows]
                  Scan(iris, cols=[id, sepal_length, sepal_width, petal_length, petal_width], prune: id in [None, 100.0])  [~100 rows]
            """
        )
        assert firings_of(prepared) == [
            "predicate-pushdown: pushed (iris.id < 100) below "
            "ModelJoin(clf)",
            "sma-range-derivation: scan iris: id in [None, 100.0]",
            "projection-pushdown: scan iris: fetch 5/6 columns",
        ]

    def test_projection_pushdown_into_scan(self, db):
        prepared = prepare(db, "projected")
        assert prepared.explain_logical() == golden(
            """
            Project(id, prediction_0)  [~200 rows]
              ModelJoin(model=clf, inputs=[iris.sepal_length, iris.sepal_width, iris.petal_length, iris.petal_width], variant=native-cpu)  [~200 rows]
                Scan(iris, cols=[id, sepal_length, sepal_width, petal_length, petal_width])  [~200 rows]
            """
        )
        assert firings_of(prepared) == [
            "projection-pushdown: scan iris: fetch 5/6 columns"
        ]

    def test_joined_model_join_extracts_hash_keys(self, db):
        prepared = prepare(db, "joined")
        assert prepared.explain_logical() == golden(
            """
            Project(id, grp, prediction_0)  [~200 rows]
              Join(keys: i.id = d.id)  [~200 rows]
                ModelJoin(model=clf, inputs=[i.sepal_length, i.sepal_width, i.petal_length, i.petal_width], variant=native-cpu)  [~200 rows]
                  Scan(iris, cols=[id, sepal_length, sepal_width, petal_length, petal_width])  [~200 rows]
                Scan(dims)  [~200 rows]
            """
        )
        assert firings_of(prepared) == [
            "join-key-extraction: hash key i.id = d.id",
            "projection-pushdown: scan i: fetch 5/6 columns",
        ]

    def test_explicit_variant_override(self, db):
        prepared = prepare(db, "override")
        (selection,) = prepared.selections
        assert selection.chosen == "native-gpu"
        assert selection.reason == "explicit override (VARIANT clause)"
        assert "variant=native-gpu" in prepared.explain_logical()

    def test_scan_filter_range_and_projection(self, db):
        prepared = prepare(db, "scan_filter")
        assert prepared.explain_logical() == golden(
            """
            Project(id, sepal_length)  [~9 rows]
              Filter((iris.id >= 20) AND (iris.id < 40))  [~9 rows]
                Scan(iris, cols=[id, sepal_length], prune: id in [20.0, 40.0])  [~100 rows]
            """
        )
        assert firings_of(prepared) == [
            "sma-range-derivation: scan iris: id in [20.0, 40.0]",
            "projection-pushdown: scan iris: fetch 2/6 columns",
        ]

    def test_aggregate_projects_only_referenced_columns(self, db):
        prepared = prepare(db, "aggregate")
        assert prepared.explain_logical() == golden(
            """
            Project(species, col1, col2)  [~20 rows]
              Aggregate(group=[iris.species], aggs=[COUNT(*), AVG(iris.sepal_length)])  [~20 rows]
                Scan(iris, cols=[sepal_length, species])  [~200 rows]
            """
        )
        assert firings_of(prepared) == [
            "projection-pushdown: scan iris: fetch 2/6 columns"
        ]

    def test_order_by_limit(self, db):
        prepared = prepare(db, "orderby")
        assert prepared.explain_logical() == golden(
            """
            Limit(7, offset=0)  [~7 rows]
              OrderBy(id asc)  [~200 rows]
                Project(id)  [~200 rows]
                  Scan(iris, cols=[id])  [~200 rows]
            """
        )

    def test_constant_folding(self, db):
        prepared = prepare(db, "folded")
        assert firings_of(prepared) == [
            "constant-folding: (10 + 5) -> 15",
            "sma-range-derivation: scan iris: id in [None, 15.0]",
            "projection-pushdown: scan iris: fetch 1/6 columns",
        ]
        assert "Filter((iris.id < 15))" in prepared.explain_logical()


class TestExplainSections:
    def test_model_join_explain_has_all_four_sections(self, db):
        plan = db.explain(QUERIES["filtered"])
        logical = plan.index("== Logical Plan ==")
        rules = plan.index("== Rewrite Rules ==")
        variants = plan.index("== ModelJoin Variant Selection ==")
        physical = plan.index("== Physical Plan ==")
        assert logical < rules < variants < physical
        assert "predicate-pushdown" in plan
        assert "<- chosen" in plan
        # every variant appears with a predicted cost in the table
        for variant in (
            "native-cpu",
            "native-gpu",
            "ml-to-sql",
            "runtime-api",
            "udf",
            "external",
        ):
            assert variant in plan

    def test_variant_selected_metric(self, db):
        before = db.metrics.counter("planner.variant_selected").value
        db.execute(QUERIES["projected"])
        after = db.metrics.counter("planner.variant_selected").value
        assert after == before + 1
        assert (
            db.metrics.counter(
                "planner.variant_selected.native-cpu"
            ).value
            > 0
        )


class TestPushdownCounters:
    def test_projected_scan_fetches_fewer_columns(self, db):
        result = db.execute(QUERIES["projected"])
        assert result.row_count == 200
        counters = db.last_profile.counters
        # id + the four model inputs; `species` is never fetched
        assert counters.get("scan.columns_fetched") == 5
        full = db.execute(QUERIES["dense"])
        assert full.row_count == 200
        assert db.last_profile.counters.get("scan.columns_fetched") == 6

    def test_pushed_filter_scores_fewer_tuples(self, db):
        db.execute(QUERIES["filtered"])
        (selection,) = db._planner().prepare(
            parse_statement(QUERIES["filtered"])
        ).selections
        # the optimizer costs the ModelJoin on the filtered cardinality
        assert selection.tuples == 30


class TestBitExactness:
    """Every optimized query returns exactly the unoptimized result."""

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_optimized_matches_unoptimized(self, name):
        optimized_db = build_database()
        baseline_db = build_database()
        baseline_db.planner_options = PlannerOptions(
            use_optimizer_rules=False
        )
        sql = QUERIES[name]
        optimized = optimized_db.execute(sql)
        baseline = baseline_db.execute(sql)
        assert optimized.schema.names == baseline.schema.names
        assert optimized.row_count == baseline.row_count
        for column in optimized.schema.names:
            np.testing.assert_array_equal(
                optimized.column(column),
                baseline.column(column),
                err_msg=f"{name}: column {column} diverged",
            )
        assert not baseline_db._planner().prepare(
            parse_statement(sql)
        ).firings
