"""Aggregation operators: hash, ordered, and their equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expressions import BinaryOp, ColumnRef, Literal
from repro.db.operators import (
    AggregateSpec,
    ExecutionContext,
    HashAggregate,
    OrderedAggregate,
    TableScan,
)
from repro.db.operators.misc import ValuesOperator
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import PlanError


@pytest.fixture
def context() -> ExecutionContext:
    return ExecutionContext(vector_size=16)


def grouped_table(keys, values, sort_key=()):
    schema = Schema.of(("g", SqlType.INTEGER), ("x", SqlType.FLOAT))
    table = Table("t", schema, sort_key=sort_key, block_size=8)
    table.append_columns(
        g=np.asarray(keys, dtype=np.int64),
        x=np.asarray(values, dtype=np.float32),
    )
    return table


def collect(operator):
    return sorted(
        row for batch in operator.batches() for row in batch.to_rows()
    )


class TestAggregateSpec:
    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            AggregateSpec("MEDIAN", ColumnRef("x"), "m")

    def test_sum_requires_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec("SUM", None, "s")

    def test_count_star_allowed(self):
        spec = AggregateSpec("COUNT", None, "c")
        assert spec.function == "COUNT"

    def test_output_types(self):
        schema = Schema.of(("x", SqlType.FLOAT))
        assert (
            AggregateSpec("SUM", ColumnRef("x"), "s").output_type(schema)
            is SqlType.FLOAT
        )
        assert (
            AggregateSpec("COUNT", None, "c").output_type(schema)
            is SqlType.INTEGER
        )
        assert (
            AggregateSpec("AVG", ColumnRef("x"), "a").output_type(schema)
            is SqlType.DOUBLE
        )


class TestHashAggregate:
    def test_sum_count_min_max_avg(self, context):
        table = grouped_table([1, 2, 1, 2, 1], [1.0, 2.0, 3.0, 4.0, 5.0])
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [
                AggregateSpec("SUM", ColumnRef("x"), "s"),
                AggregateSpec("COUNT", None, "c"),
                AggregateSpec("MIN", ColumnRef("x"), "lo"),
                AggregateSpec("MAX", ColumnRef("x"), "hi"),
                AggregateSpec("AVG", ColumnRef("x"), "a"),
            ],
        )
        rows = collect(agg)
        assert rows == [
            (1, 9.0, 3, 1.0, 5.0, 3.0),
            (2, 6.0, 2, 2.0, 4.0, 3.0),
        ]

    def test_aggregate_over_expression(self, context):
        table = grouped_table([1, 1], [2.0, 3.0])
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [
                AggregateSpec(
                    "SUM",
                    BinaryOp("*", ColumnRef("x"), Literal.of(2.0)),
                    "s",
                )
            ],
        )
        assert collect(agg) == [(1, 10.0)]

    def test_empty_input(self, context):
        table = grouped_table([], [])
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        assert collect(agg) == []

    def test_memory_accounted_and_released(self, context):
        table = grouped_table(range(100), range(100))
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        collect(agg)
        assert context.memory.peak_bytes > 0
        assert context.memory.current_bytes == 0

    def test_float32_sum_stays_float32(self, context):
        table = grouped_table([1, 1], [0.5, 0.25])
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        batch = next(iter(agg.batches()))
        assert batch.column("s").dtype == np.float32

    def test_distinct_style_no_aggregates(self, context):
        table = grouped_table([3, 3, 1, 1, 2], [0, 0, 0, 0, 0])
        agg = HashAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [],
        )
        assert collect(agg) == [(1,), (2,), (3,)]


class TestOrderedAggregate:
    def test_requires_covering_order(self, context):
        table = grouped_table([1, 2], [1.0, 2.0])  # no sort key
        with pytest.raises(PlanError):
            OrderedAggregate(
                context,
                TableScan(context, table),
                [ColumnRef("g")],
                ["g"],
                [AggregateSpec("SUM", ColumnRef("x"), "s")],
            )

    def test_requires_bare_columns(self, context):
        table = grouped_table([1, 2], [1.0, 2.0], sort_key=("g",))
        with pytest.raises(PlanError):
            OrderedAggregate(
                context,
                TableScan(context, table),
                [BinaryOp("+", ColumnRef("g"), Literal.of(1))],
                ["g1"],
                [AggregateSpec("SUM", ColumnRef("x"), "s")],
            )

    def test_streaming_groups_across_batches(self, context):
        keys = sorted([i // 7 for i in range(100)])
        table = grouped_table(keys, np.ones(100), sort_key=("g",))
        agg = OrderedAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        rows = collect(agg)
        assert len(rows) == len(set(keys))
        assert all(total in (7.0, 2.0) for _, total in rows)

    def test_single_group_spanning_everything(self, context):
        table = grouped_table([5] * 50, np.ones(50), sort_key=("g",))
        agg = OrderedAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        assert collect(agg) == [(5, 50.0)]

    def test_ordering_property_exposed(self, context):
        table = grouped_table([1, 2], [1.0, 2.0], sort_key=("g",))
        agg = OrderedAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        assert agg.ordering == ("g",)

    def test_constant_memory(self, context):
        table = grouped_table(
            sorted(range(1000)), np.ones(1000), sort_key=("g",)
        )
        agg = OrderedAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("g")],
            ["g"],
            [AggregateSpec("SUM", ColumnRef("x"), "s")],
        )
        rows = collect(agg)
        assert len(rows) == 1000
        # Order-based aggregation never registers buffered input.
        assert context.memory.by_category.get("aggregation", 0) == 0


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-5, max_value=5), max_size=200),
    functions=st.sets(
        st.sampled_from(["SUM", "COUNT", "MIN", "MAX", "AVG"]),
        min_size=1,
        max_size=3,
    ),
)
def test_hash_equals_ordered_on_sorted_input(keys, functions):
    """Property: both strategies agree on any sorted input."""
    keys = sorted(keys)
    values = [float(key) * 0.5 + 1.0 for key in keys]
    context = ExecutionContext(vector_size=7)
    specs = [
        AggregateSpec(
            function,
            None if function == "COUNT" else ColumnRef("x"),
            f"out_{function}",
        )
        for function in sorted(functions)
    ]

    def run(cls):
        table = grouped_table(keys, values, sort_key=("g",))
        scan = TableScan(context, table)
        operator = cls(context, scan, [ColumnRef("g")], ["g"], specs)
        return collect(operator)

    hash_rows = run(HashAggregate)
    ordered_rows = run(OrderedAggregate)
    assert len(hash_rows) == len(ordered_rows)
    for left, right in zip(hash_rows, ordered_rows):
        assert left[0] == right[0]
        np.testing.assert_allclose(left[1:], right[1:], rtol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
            st.floats(
                min_value=-100,
                max_value=100,
                allow_nan=False,
                width=32,
            ),
        ),
        max_size=150,
    )
)
def test_hash_aggregate_matches_python_reference(rows):
    """Property: multi-key hash aggregation equals a dict reference."""
    context = ExecutionContext(vector_size=13)
    schema = Schema.of(
        ("a", SqlType.INTEGER),
        ("b", SqlType.INTEGER),
        ("x", SqlType.FLOAT),
    )
    source = ValuesOperator(context, schema, rows)
    agg = HashAggregate(
        context,
        source,
        [ColumnRef("a"), ColumnRef("b")],
        ["a", "b"],
        [
            AggregateSpec("SUM", ColumnRef("x"), "s"),
            AggregateSpec("COUNT", None, "c"),
        ],
    )
    got = {
        (row[0], row[1]): (row[2], row[3])
        for batch in agg.batches()
        for row in batch.to_rows()
    }
    expected: dict = {}
    for a, b, x in rows:
        total, count = expected.get((a, b), (np.float32(0.0), 0))
        expected[(a, b)] = (total + np.float32(x), count + 1)
    assert set(got) == set(expected)
    for key, (total, count) in expected.items():
        np.testing.assert_allclose(got[key][0], total, rtol=1e-4)
        assert got[key][1] == count
