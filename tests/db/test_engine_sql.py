"""End-to-end SQL tests against the Database facade."""

import numpy as np
import pytest

from repro.db.engine import Database
from repro.errors import (
    BindError,
    CatalogError,
    PlanError,
    TypeMismatchError,
)


@pytest.fixture
def populated(db: Database) -> Database:
    db.execute("CREATE TABLE t (id INTEGER, grp INTEGER, v FLOAT)")
    rows = ", ".join(
        f"({i}, {i % 3}, {float(i)})" for i in range(30)
    )
    db.execute(f"INSERT INTO t VALUES {rows}")
    return db


class TestDdlDml:
    def test_create_and_insert(self, db):
        db.execute("CREATE TABLE x (a INTEGER, b VARCHAR)")
        db.execute("INSERT INTO x VALUES (1, 'one'), (2, 'two')")
        result = db.execute("SELECT a, b FROM x ORDER BY a")
        assert result.rows == [(1, "one"), (2, "two")]

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE x (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE x (a INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE x (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS x (a INTEGER)")

    def test_drop_table(self, db):
        db.execute("CREATE TABLE x (a INTEGER)")
        db.execute("DROP TABLE x")
        with pytest.raises(CatalogError):
            db.execute("SELECT a FROM x")

    def test_drop_missing_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS nothing")

    def test_insert_wrong_arity(self, db):
        db.execute("CREATE TABLE x (a INTEGER, b INTEGER)")
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO x VALUES (1)")

    def test_insert_with_column_reorder(self, db):
        db.execute("CREATE TABLE x (a INTEGER, b FLOAT)")
        db.execute("INSERT INTO x (b, a) VALUES (2.5, 1)")
        assert db.execute("SELECT a, b FROM x").rows == [(1, 2.5)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INTEGER)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("CREATE TABLE dst (a INTEGER)")
        db.execute("INSERT INTO dst SELECT a + 10 AS a FROM src")
        assert db.execute("SELECT a FROM dst ORDER BY a").rows == [
            (11,),
            (12,),
            (13,),
        ]

    def test_create_with_partitions_and_sort(self, db):
        db.execute(
            "CREATE TABLE p (id INTEGER, v FLOAT) "
            "PARTITION BY (id) PARTITIONS 3 SORTED BY (id)"
        )
        table = db.table("p")
        assert table.num_partitions == 3
        assert table.sort_key == ("id",)


class TestSelect:
    def test_projection_expression(self, populated):
        result = populated.execute(
            "SELECT id, v * 2 AS dbl FROM t WHERE id < 3 ORDER BY id"
        )
        assert result.rows == [(0, 0.0), (1, 2.0), (2, 4.0)]

    def test_where_and_or(self, populated):
        result = populated.execute(
            "SELECT id FROM t WHERE id < 4 AND (grp = 0 OR grp = 1) "
            "ORDER BY id"
        )
        assert [row[0] for row in result.rows] == [0, 1, 3]

    def test_between(self, populated):
        result = populated.execute(
            "SELECT id FROM t WHERE id BETWEEN 5 AND 7 ORDER BY id"
        )
        assert [row[0] for row in result.rows] == [5, 6, 7]

    def test_group_by_with_having(self, populated):
        result = populated.execute(
            "SELECT grp, SUM(v) AS s FROM t GROUP BY grp "
            "HAVING SUM(v) > 140 ORDER BY grp"
        )
        assert result.rows == [(1, 145.0), (2, 155.0)]

    def test_aggregate_in_expression(self, populated):
        result = populated.execute(
            "SELECT grp, SUM(v) / COUNT(*) AS mean FROM t "
            "GROUP BY grp ORDER BY grp"
        )
        means = [row[1] for row in result.rows]
        np.testing.assert_allclose(means, [13.5, 14.5, 15.5])

    def test_group_key_expression_reused(self, populated):
        result = populated.execute(
            "SELECT grp + 1 AS g1, COUNT(*) AS c FROM t "
            "GROUP BY grp + 1 ORDER BY g1"
        )
        assert result.rows == [(1, 10), (2, 10), (3, 10)]

    def test_non_grouped_column_rejected(self, populated):
        with pytest.raises(PlanError):
            populated.execute(
                "SELECT id, SUM(v) AS s FROM t GROUP BY grp"
            )

    def test_global_aggregate_unsupported_hint(self, populated):
        with pytest.raises(PlanError, match="constant group key"):
            populated.execute("SELECT SUM(v) AS s FROM t")

    def test_distinct(self, populated):
        result = populated.execute("SELECT DISTINCT grp FROM t ORDER BY grp")
        assert result.rows == [(0,), (1,), (2,)]

    def test_order_by_desc_limit(self, populated):
        result = populated.execute(
            "SELECT id FROM t ORDER BY id DESC LIMIT 3"
        )
        assert [row[0] for row in result.rows] == [29, 28, 27]

    def test_select_star(self, populated):
        result = populated.execute("SELECT * FROM t LIMIT 1")
        assert result.schema.names == ("id", "grp", "v")

    def test_alias_scoping(self, populated):
        result = populated.execute(
            "SELECT a.id FROM t AS a WHERE a.id = 5"
        )
        assert result.rows == [(5,)]

    def test_unknown_column(self, populated):
        with pytest.raises(BindError):
            populated.execute("SELECT nothing FROM t")

    def test_ambiguous_column(self, populated):
        with pytest.raises(BindError, match="ambiguous"):
            populated.execute(
                "SELECT id FROM t AS a, t AS b WHERE a.id = b.id"
            )

    def test_join_with_qualified_star(self, populated):
        result = populated.execute(
            "SELECT a.* FROM t AS a, t AS b "
            "WHERE a.id = b.id AND a.id < 2 ORDER BY id"
        )
        assert result.schema.names == ("id", "grp", "v")
        assert len(result.rows) == 2

    def test_ansi_join_syntax(self, populated):
        result = populated.execute(
            "SELECT a.id FROM t AS a JOIN t AS b ON a.id = b.id "
            "WHERE a.id = 7"
        )
        assert result.rows == [(7,)]

    def test_subquery_nesting(self, populated):
        result = populated.execute(
            "SELECT g, s FROM (SELECT grp AS g, SUM(v) AS s FROM t "
            "GROUP BY grp) AS q WHERE s > 140 ORDER BY g"
        )
        assert [row[0] for row in result.rows] == [1, 2]

    def test_scalar_helper(self, populated):
        result = populated.execute(
            "SELECT COUNT(*) AS c FROM t GROUP BY 1 = 1"
        )
        assert result.scalar() == 30

    def test_case_expression(self, populated):
        result = populated.execute(
            "SELECT id, CASE WHEN grp = 0 THEN 'zero' ELSE 'other' END "
            "AS label FROM t WHERE id < 2 ORDER BY id"
        )
        assert result.rows == [(0, "zero"), (1, "other")]

    def test_explain_returns_plan(self, populated):
        result = populated.execute("EXPLAIN SELECT id FROM t WHERE id > 5")
        text = "\n".join(row[0] for row in result.rows)
        assert "TableScan" in text
        assert "Filter" in text

    def test_profile_populated(self, populated):
        populated.execute("SELECT grp, SUM(v) AS s FROM t GROUP BY grp")
        profile = populated.last_profile
        assert profile.wall_seconds > 0
        assert profile.rows_returned == 3
        assert profile.peak_memory_bytes > 0


class TestBlockPruning:
    def test_pruning_correctness(self):
        db = Database()
        db.execute("CREATE TABLE big (id INTEGER, v FLOAT)")
        ids = np.arange(50_000, dtype=np.int64)
        db.table("big").append_columns(
            id=ids, v=ids.astype(np.float32)
        )
        result = db.execute(
            "SELECT id FROM big WHERE id >= 49990 ORDER BY id"
        )
        assert [row[0] for row in result.rows] == list(range(49990, 50000))

    def test_pruning_disabled_same_result(self):
        from repro.db.planner import PlannerOptions

        queries = "SELECT id FROM big WHERE id BETWEEN 100 AND 105 ORDER BY id"
        results = []
        for pruning in (True, False):
            db = Database(
                planner_options=PlannerOptions(use_block_pruning=pruning)
            )
            db.execute("CREATE TABLE big (id INTEGER, v FLOAT)")
            ids = np.arange(10_000, dtype=np.int64)
            db.table("big").append_columns(
                id=ids, v=ids.astype(np.float32)
            )
            results.append(db.execute(queries).rows)
        assert results[0] == results[1]
