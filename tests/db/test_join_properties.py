"""Property-based tests: hash join vs a naive reference join."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expressions import ColumnRef
from repro.db.operators import ExecutionContext, HashJoin
from repro.db.operators.misc import ValuesOperator
from repro.db.schema import Schema
from repro.db.types import SqlType


def reference_join(left_rows, right_rows):
    return sorted(
        left + right
        for left in left_rows
        for right in right_rows
        if left[0] == right[0]
    )


@settings(max_examples=50, deadline=None)
@given(
    left_rows=st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=60,
    ),
    right_rows=st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=100, max_value=199),
        ),
        max_size=60,
    ),
)
def test_hash_join_matches_nested_loops(left_rows, right_rows):
    context = ExecutionContext(vector_size=9)
    left = ValuesOperator(
        context,
        Schema.of(("k", SqlType.INTEGER), ("lv", SqlType.INTEGER)),
        left_rows,
    )
    right = ValuesOperator(
        context,
        Schema.of(("k2", SqlType.INTEGER), ("rv", SqlType.INTEGER)),
        right_rows,
    )
    join = HashJoin(
        context, left, right, [ColumnRef("k")], [ColumnRef("k2")]
    )
    got = sorted(
        row for batch in join.batches() for row in batch.to_rows()
    )
    assert got == reference_join(left_rows, right_rows)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.floats(allow_nan=False, width=32, min_value=-10, max_value=10),
        max_size=40,
    )
)
def test_float_key_join_equality_semantics(keys):
    """Float keys (incl. +/-0.0) join by SQL value equality."""
    context = ExecutionContext()
    rows = [(float(np.float32(key)),) for key in keys]
    left = ValuesOperator(
        context, Schema.of(("k", SqlType.FLOAT),), rows
    )
    right = ValuesOperator(
        context, Schema.of(("k2", SqlType.FLOAT),), [(0.0,), (-0.0,), (1.0,)]
    )
    join = HashJoin(
        context, left, right, [ColumnRef("k")], [ColumnRef("k2")]
    )
    got = len(
        [row for batch in join.batches() for row in batch.to_rows()]
    )
    expected = sum(
        1
        for (k,) in rows
        for probe in (0.0, -0.0, 1.0)
        if k == probe
    )
    assert got == expected
