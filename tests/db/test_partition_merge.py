"""Property tests: aggregation merged across K disjoint partitions is
bit-exact against the single-partition run.

Two partitioning regimes are exercised, matching the two shard merge
strategies (see repro.db.shard.fragments):

- *hash-based*: rows are routed by ``abs(hash(group)) % K`` — every
  group wholly owned by one partition, results merged by concat;
- *order-based*: rows sorted by group key and split at group
  boundaries into K contiguous runs — also disjoint, merged by concat;
- the *partial* regime splits rows round-robin (groups span
  partitions) and re-aggregates decomposed partials at the merge.

Values are multiples of 1/8 so float SUM/AVG folds are exact in any
order; bit-exactness is then a strict equality check.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database
from repro.db.operators import ExecutionContext
from repro.db.plan.physical import GatherExchange
from repro.db.schema import Column, Schema
from repro.db.shard.fragments import (
    FragmentPlan,
    _decompose_aggregation,
    build_merge_plan,
)
from repro.db.sql.parser import parse_statement
from repro.db.types import SqlType
from repro.db.vector import VectorBatch

SQL = (
    "SELECT g, SUM(v) AS s, COUNT(v) AS c, AVG(v) AS a, "
    "MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g"
)

SCHEMA = Schema((Column("g", SqlType.INTEGER), Column("v", SqlType.DOUBLE)))

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 6),
        st.integers(-800, 800).map(lambda n: n / 8.0),
    ),
    min_size=1,
    max_size=60,
)


def _run(rows, sql=SQL):
    """Run *sql* over *rows* in a throwaway in-memory engine."""
    db = Database()
    table = db.create_table("t", SCHEMA)
    if rows:
        table.append_batch(
            VectorBatch.from_dict(
                SCHEMA,
                {
                    "g": np.array([g for g, _ in rows], dtype=np.int64),
                    "v": np.array([v for _, v in rows], dtype=np.float64),
                },
            )
        )
    return db.execute(sql)


def _merge(fragment, results):
    """Coordinator-side merge of per-partition results (production path)."""
    context = ExecutionContext(vector_size=1024)
    schema = results[0].schema
    sources = [result.batches for result in results]
    gather = GatherExchange(context, schema, sources)
    plan = build_merge_plan(context, fragment, gather)
    return plan.schema, list(plan.batches())


def _sorted_rows(schema, batches_or_result):
    if hasattr(batches_or_result, "rows"):
        rows = batches_or_result.rows
    else:
        rows = [
            tuple(batch.arrays[i][j] for i in range(len(schema)))
            for batch in batches_or_result
            for j in range(len(batch))
        ]
    return sorted(rows)


def _partial_fragment(sql=SQL):
    statement = parse_statement(sql)
    fragment = FragmentPlan(
        shard_statement=statement, merge="concat", sharded_table="t"
    )
    core = dataclasses.replace(
        statement, order_by=(), limit=None, offset=0, distinct=False
    )
    _decompose_aggregation(fragment, core)
    return fragment


class TestDisjointPartitions:
    """Groups wholly owned by one partition: concat merge, bit-exact."""

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy, st.sampled_from([2, 3, 5]))
    def test_hash_partitioned(self, rows, k):
        parts = [
            [row for row in rows if abs(hash(row[0])) % k == shard]
            for shard in range(k)
        ]
        merged = [
            row for result in map(_run, parts) for row in result.rows
        ]
        single = _run(rows)
        assert sorted(merged) == sorted(single.rows)

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy, st.sampled_from([2, 3, 5]))
    def test_order_partitioned(self, rows, k):
        ordered = sorted(rows, key=lambda row: row[0])
        groups = sorted({g for g, _ in ordered})
        parts = [
            [
                row
                for row in ordered
                if groups.index(row[0]) % k == shard
            ]
            for shard in range(k)
        ]
        merged = [
            row for result in map(_run, parts) for row in result.rows
        ]
        single = _run(rows)
        assert sorted(merged) == sorted(single.rows)


class TestPartialMerge:
    """Groups span partitions: decomposed partials re-aggregated."""

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy, st.sampled_from([2, 3, 5]))
    def test_round_robin_partial_merge(self, rows, k):
        fragment = _partial_fragment()
        parts = [rows[shard::k] for shard in range(k)]
        results = [
            _run_statement(part, fragment.shard_statement)
            for part in parts
            if part
        ]
        schema, batches = _merge(fragment, results)
        single = _run(rows)
        assert tuple(schema.names) == tuple(single.schema.names)
        assert _sorted_rows(schema, batches) == _sorted_rows(
            single.schema, single
        )

    def test_having_applied_after_merge(self):
        sql = (
            "SELECT g, SUM(v) AS s FROM t GROUP BY g "
            "HAVING COUNT(v) > 2"
        )
        rows = [(1, 0.5), (1, 1.5), (1, 2.0), (2, 4.0), (2, 0.25)]
        fragment = _partial_fragment(sql)
        assert fragment.having is not None
        parts = [rows[0::2], rows[1::2]]
        results = [
            _run_statement(part, fragment.shard_statement)
            for part in parts
        ]
        schema, batches = _merge(fragment, results)
        single = _run(rows, sql)
        assert _sorted_rows(schema, batches) == _sorted_rows(
            single.schema, single
        )


def _run_statement(rows, statement):
    db = Database()
    table = db.create_table("t", SCHEMA)
    if rows:
        table.append_batch(
            VectorBatch.from_dict(
                SCHEMA,
                {
                    "g": np.array([g for g, _ in rows], dtype=np.int64),
                    "v": np.array([v for _, v in rows], dtype=np.float64),
                },
            )
        )
    return db.execute_statement(statement)
