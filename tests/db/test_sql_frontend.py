"""Lexer and parser tests."""

import pytest

from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FunctionCall,
    Literal,
)
from repro.db.sql.ast import (
    CreateTable,
    DropTable,
    Explain,
    InsertValues,
    JoinRef,
    ModelJoinRef,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
)
from repro.db.sql.lexer import TokenKind, tokenize
from repro.db.sql.parser import parse_expression, parse_statement
from repro.errors import SqlSyntaxError


class TestLexer:
    def test_tokenizes_identifiers_and_numbers(self):
        tokens = tokenize("SELECT a1 FROM t2")
        kinds = [token.kind for token in tokens]
        assert kinds[:-1] == [TokenKind.IDENT] * 4
        assert kinds[-1] is TokenKind.EOF

    def test_scientific_numbers(self):
        tokens = tokenize("1.5e-3 2E4 .5")
        values = [token.text for token in tokens[:-1]]
        assert values == ["1.5e-3", "2E4", ".5"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_line_comment_skipped(self):
        tokens = tokenize("a -- comment\n b")
        assert [token.text for token in tokens[:-1]] == ["a", "b"]

    def test_multi_char_operators(self):
        tokens = tokenize("a <= b <> c >= d")
        operators = [
            token.text
            for token in tokens
            if token.kind is TokenKind.OPERATOR
        ]
        assert operators == ["<=", "<>", ">="]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a @ b")

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "Weird Name"


class TestExpressionParsing:
    def test_precedence_multiplication_first(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.operator == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.operator == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.operator == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.operator == "OR"
        assert expr.right.operator == "AND"

    def test_between_desugars(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert expr.operator == "AND"
        assert expr.left.operator == ">="
        assert expr.right.operator == "<="

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr == ColumnRef("t.col")

    def test_function_call_uppercased(self):
        expr = parse_expression("sigmoid(x)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "SIGMOID"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == FunctionCall("COUNT", ())

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("SUM(*)")

    def test_case_when(self):
        expr = parse_expression(
            "CASE WHEN x > 0 THEN 1 WHEN x < 0 THEN -1 ELSE 0 END"
        )
        assert isinstance(expr, CaseWhen)
        assert len(expr.branches) == 2
        assert expr.otherwise == Literal.of(0)

    def test_unary_minus_binds_tight(self):
        expr = parse_expression("-x * 2")
        assert expr.operator == "*"

    def test_not_equal_synonyms(self):
        assert parse_expression("a != 1") == parse_expression("a <> 1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("1 + 2 banana!")


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_statement("SELECT a, b AS bee FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.select_items[1].alias == "bee"
        assert statement.from_items == (TableRef("t"),)

    def test_star_and_qualified_star(self):
        statement = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(statement.select_items[0].expression, Star)
        assert statement.select_items[1].expression.qualifier == "t"

    def test_implicit_alias(self):
        statement = parse_statement("SELECT x FROM table1 t1")
        assert statement.from_items[0].alias == "t1"

    def test_comma_join_and_where(self):
        statement = parse_statement(
            "SELECT a.x FROM a, b WHERE a.id = b.id AND a.x > 3"
        )
        assert len(statement.from_items) == 2
        assert statement.where is not None

    def test_ansi_join(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.id"
        )
        item = statement.from_items[0]
        assert isinstance(item, JoinRef)

    def test_subquery(self):
        statement = parse_statement(
            "SELECT q.x FROM (SELECT x FROM t) AS q"
        )
        item = statement.from_items[0]
        assert isinstance(item, SubqueryRef)
        assert item.alias == "q"

    def test_group_by_having_order_limit(self):
        statement = parse_statement(
            "SELECT g, SUM(x) AS s FROM t GROUP BY g HAVING SUM(x) > 1 "
            "ORDER BY g DESC LIMIT 5 OFFSET 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert (statement.limit, statement.offset) == (5, 2)

    def test_distinct(self):
        statement = parse_statement("SELECT DISTINCT a FROM t")
        assert statement.distinct

    def test_model_join(self):
        statement = parse_statement(
            "SELECT * FROM t MODEL JOIN clf USING (a, b)"
        )
        item = statement.from_items[0]
        assert isinstance(item, ModelJoinRef)
        assert item.model_name == "clf"
        assert item.input_columns == ("a", "b")

    def test_model_as_plain_alias(self):
        statement = parse_statement("SELECT * FROM t model")
        assert statement.from_items[0].alias == "model"


class TestOtherStatements:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (id INT, v FLOAT) "
            "PARTITION BY (id) PARTITIONS 4 SORTED BY (id, v)"
        )
        assert isinstance(statement, CreateTable)
        assert statement.partition_key == "id"
        assert statement.num_partitions == 4
        assert statement.sort_key == ("id", "v")

    def test_create_table_if_not_exists(self):
        statement = parse_statement(
            "CREATE TABLE IF NOT EXISTS t (a INT)"
        )
        assert statement.if_not_exists

    def test_create_table_unknown_type(self):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            parse_statement("CREATE TABLE t (a BLOB)")

    def test_drop_table(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTable)
        assert statement.if_exists

    def test_insert_values(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (1, -2.5, 'x'), (2, 3.0, 'y')"
        )
        assert isinstance(statement, InsertValues)
        assert statement.rows == ((1, -2.5, "x"), (2, 3.0, "y"))

    def test_insert_with_column_list(self):
        statement = parse_statement("INSERT INTO t (b, a) VALUES (1, 2)")
        assert statement.column_names == ("b", "a")

    def test_insert_null_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("INSERT INTO t VALUES (NULL)")

    def test_explain(self):
        statement = parse_statement("EXPLAIN SELECT a FROM t")
        assert isinstance(statement, Explain)

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("UPDATE t SET a = 1")
