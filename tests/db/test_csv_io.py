"""CSV import/export."""

import numpy as np
import pytest

from repro.db.csv_io import export_csv, load_csv
from repro.db.engine import Database
from repro.errors import TypeMismatchError


@pytest.fixture
def db_with_table(db: Database) -> Database:
    db.execute(
        "CREATE TABLE t (id INTEGER, v FLOAT, name VARCHAR, ok BOOLEAN)"
    )
    return db


class TestLoad:
    def test_load_with_header_any_order(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("v,id,ok,name\n1.5,1,true,alpha\n2.5,2,false,beta\n")
        loaded = load_csv(db_with_table, "t", path)
        assert loaded == 2
        rows = db_with_table.execute(
            "SELECT id, v, name, ok FROM t ORDER BY id"
        ).rows
        assert rows == [(1, 1.5, "alpha", True), (2, 2.5, "beta", False)]

    def test_load_without_header(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,0.5,x,1\n")
        assert load_csv(db_with_table, "t", path, has_header=False) == 1

    def test_header_must_cover_schema(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,v\n1,1.0\n")
        with pytest.raises(TypeMismatchError, match="cover"):
            load_csv(db_with_table, "t", path)

    def test_bad_boolean(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,v,name,ok\n1,1.0,x,maybe\n")
        with pytest.raises(TypeMismatchError, match="boolean"):
            load_csv(db_with_table, "t", path)

    def test_wrong_field_count(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,v,name,ok\n1,1.0\n")
        with pytest.raises(TypeMismatchError, match="fields"):
            load_csv(db_with_table, "t", path)

    def test_empty_file(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("")
        assert load_csv(db_with_table, "t", path) == 0

    def test_chunked_load(self, db_with_table, tmp_path):
        path = tmp_path / "data.csv"
        lines = ["id,v,name,ok"]
        lines += [f"{i},{i}.5,n{i},true" for i in range(100)]
        path.write_text("\n".join(lines) + "\n")
        assert load_csv(db_with_table, "t", path, chunk_rows=7) == 100
        assert db_with_table.table("t").row_count == 100


class TestExportRoundtrip:
    def test_export_and_reload(self, db_with_table, tmp_path):
        db = db_with_table
        db.execute(
            "INSERT INTO t VALUES (1, 0.25, 'a', TRUE), "
            "(2, -3.5, 'b', FALSE)"
        )
        path = tmp_path / "out.csv"
        written = export_csv(db, path, query="SELECT * FROM t ORDER BY id")
        assert written == 2
        db.execute(
            "CREATE TABLE t2 (id INTEGER, v FLOAT, name VARCHAR, "
            "ok BOOLEAN)"
        )
        load_csv(db, "t2", path)
        assert (
            db.execute("SELECT * FROM t2 ORDER BY id").rows
            == db.execute("SELECT * FROM t ORDER BY id").rows
        )

    def test_export_result_object(self, db_with_table, tmp_path):
        db = db_with_table
        db.execute("INSERT INTO t VALUES (5, 1.0, 'z', TRUE)")
        result = db.execute("SELECT id, v FROM t")
        path = tmp_path / "res.csv"
        export_csv(result, path)
        assert path.read_text().splitlines()[0] == "id,v"

    def test_export_requires_query_with_database(self, db_with_table, tmp_path):
        with pytest.raises(TypeMismatchError):
            export_csv(db_with_table, tmp_path / "x.csv")

    def test_float_precision_roundtrip(self, db_with_table, tmp_path):
        db = db_with_table
        value = float(np.float32(1.0) / np.float32(3.0))
        db.table("t").append_rows([(1, value, "p", True)])
        path = tmp_path / "prec.csv"
        export_csv(db, path, query="SELECT * FROM t")
        db.execute(
            "CREATE TABLE t3 (id INTEGER, v FLOAT, name VARCHAR, "
            "ok BOOLEAN)"
        )
        load_csv(db, "t3", path)
        reloaded = db.execute("SELECT v, id FROM t3").column("v")[0]
        assert np.float32(reloaded) == np.float32(value)
