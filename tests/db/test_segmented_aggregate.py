"""Segmented (partially ordered) aggregation — paper §4.4 pipelining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.db.engine import Database
from repro.db.expressions import ColumnRef
from repro.db.operators import (
    AggregateSpec,
    ExecutionContext,
    TableScan,
)
from repro.db.operators.aggregate import SegmentedAggregate
from repro.db.planner import PlannerOptions
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import PlanError


def make_table(ids, nodes, values, sort_key=("id",)):
    schema = Schema.of(
        ("id", SqlType.INTEGER),
        ("node", SqlType.INTEGER),
        ("v", SqlType.FLOAT),
    )
    table = Table("t", schema, sort_key=sort_key, block_size=16)
    table.append_columns(
        id=np.asarray(ids, dtype=np.int64),
        node=np.asarray(nodes, dtype=np.int64),
        v=np.asarray(values, dtype=np.float32),
    )
    return table


def run_segmented(table, context, prefix_length=1):
    operator = SegmentedAggregate(
        context,
        TableScan(context, table),
        [ColumnRef("id"), ColumnRef("node")],
        ["id", "node"],
        [
            AggregateSpec("SUM", ColumnRef("v"), "s"),
            AggregateSpec("COUNT", None, "c"),
        ],
        prefix_length=prefix_length,
    )
    return sorted(
        row for batch in operator.batches() for row in batch.to_rows()
    )


def reference(ids, nodes, values):
    groups: dict = {}
    for i, n, v in zip(ids, nodes, values):
        s, c = groups.get((i, n), (np.float32(0), 0))
        groups[(i, n)] = (s + np.float32(v), c + 1)
    return sorted(
        (i, n, float(s), c) for (i, n), (s, c) in groups.items()
    )


class TestOperator:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        ids = np.sort(rng.integers(0, 40, size=300))
        nodes = rng.integers(0, 5, size=300)
        values = rng.normal(size=300).astype(np.float32)
        context = ExecutionContext(vector_size=23)
        got = run_segmented(make_table(ids, nodes, values), context)
        expected = reference(ids, nodes, values)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g[0] == e[0] and g[1] == e[1] and g[3] == e[3]
            np.testing.assert_allclose(g[2], e[2], rtol=1e-5)

    def test_memory_is_transient(self):
        ids = np.sort(np.arange(5000) % 500)
        context = ExecutionContext(vector_size=64)
        run_segmented(
            make_table(ids, ids % 3, np.ones(5000)), context
        )
        # Only segment-sized buffers were ever held.
        assert context.memory.current_bytes == 0
        assert 0 < context.memory.peak_bytes < 5000 * 8

    def test_requires_ordering_on_prefix(self):
        table = make_table([1, 2], [0, 0], [1.0, 1.0], sort_key=())
        context = ExecutionContext()
        with pytest.raises(PlanError, match="ordering"):
            SegmentedAggregate(
                context,
                TableScan(context, table),
                [ColumnRef("id"), ColumnRef("node")],
                ["id", "node"],
                [AggregateSpec("SUM", ColumnRef("v"), "s")],
                prefix_length=1,
            )

    def test_invalid_prefix_length(self):
        table = make_table([1], [0], [1.0])
        context = ExecutionContext()
        with pytest.raises(PlanError, match="prefix"):
            SegmentedAggregate(
                context,
                TableScan(context, table),
                [ColumnRef("id")],
                ["id"],
                [AggregateSpec("SUM", ColumnRef("v"), "s")],
                prefix_length=0,
            )

    def test_output_ordered_by_prefix(self):
        ids = np.sort(np.arange(100) % 20)
        context = ExecutionContext(vector_size=7)
        table = make_table(ids, ids % 3, np.ones(100))
        operator = SegmentedAggregate(
            context,
            TableScan(context, table),
            [ColumnRef("id"), ColumnRef("node")],
            ["id", "node"],
            [AggregateSpec("SUM", ColumnRef("v"), "s")],
            prefix_length=1,
        )
        assert operator.ordering == ("id",)
        emitted = [
            row[0]
            for batch in operator.batches()
            for row in batch.to_rows()
        ]
        assert emitted == sorted(emitted)


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),  # rows in segment
            st.integers(min_value=1, max_value=4),  # distinct nodes
        ),
        min_size=0,
        max_size=25,
    ),
    vector_size=st.sampled_from([3, 8, 64]),
)
def test_segmented_equals_hash_reference(segments, vector_size):
    """Property: segmented == full-hash aggregation for any sorted-by-id
    input, any batch size."""
    ids, nodes, values = [], [], []
    for segment_id, (rows, distinct) in enumerate(segments):
        for row in range(rows):
            ids.append(segment_id)
            nodes.append(row % distinct)
            values.append(float(segment_id) + row * 0.5)
    context = ExecutionContext(vector_size=vector_size)
    table = make_table(ids, nodes, values)
    got = run_segmented(table, context)
    expected = reference(ids, nodes, values)
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert (g[0], g[1], g[3]) == (e[0], e[1], e[3])
        np.testing.assert_allclose(g[2], e[2], rtol=1e-4)


class TestPlannerIntegration:
    def _db(self, segmented: bool) -> Database:
        db = Database(
            planner_options=PlannerOptions(
                use_segmented_aggregation=segmented
            )
        )
        db.execute(
            "CREATE TABLE t (id INTEGER, node INTEGER, v FLOAT) "
            "SORTED BY (id)"
        )
        ids = np.repeat(np.arange(200, dtype=np.int64), 4)
        db.table("t").append_columns(
            id=ids,
            node=np.tile(np.arange(4, dtype=np.int64), 200),
            v=np.ones(800, dtype=np.float32),
        )
        return db

    QUERY = "SELECT id, node, SUM(v) AS s FROM t GROUP BY id, node"

    def test_planner_picks_segmented_when_enabled(self):
        db = self._db(True)
        assert "SegmentedAggregate(prefix=1" in db.explain(self.QUERY)

    def test_planner_defaults_to_hash(self):
        db = self._db(False)
        assert "HashAggregate" in db.explain(self.QUERY)

    def test_results_identical(self):
        assert sorted(self._db(True).execute(self.QUERY).rows) == sorted(
            self._db(False).execute(self.QUERY).rows
        )

    def test_fully_covered_keys_still_use_ordered(self):
        db = self._db(True)
        plan = db.explain("SELECT id, SUM(v) AS s FROM t GROUP BY id")
        assert "OrderedAggregate" in plan

    def test_mltosql_pipeline_with_segmented_aggregation(self):
        """The §4.4 end-to-end effect: the generated query runs with
        segment-sized memory and unchanged results."""
        from repro.core.ml_to_sql.generator import MlToSqlModelJoin
        from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
        from repro.workloads.models import make_dense_model

        db = repro.Database(
            planner_options=PlannerOptions(use_segmented_aggregation=True)
        )
        repro.attach(db)
        load_iris_table(db, 400)
        model = make_dense_model(8, 2, seed=1)
        runner = MlToSqlModelJoin(db, model)
        sql = runner.generator(
            "iris", "id", list(FEATURE_COLUMNS)
        ).inference_query()
        assert "SegmentedAggregate" in db.explain(sql)
        predictions = runner.predict("iris", "id", list(FEATURE_COLUMNS))
        features = np.column_stack(
            [
                db.execute(
                    f"SELECT id, {c} FROM iris ORDER BY id"
                ).column(c)
                for c in FEATURE_COLUMNS
            ]
        )
        np.testing.assert_allclose(
            predictions, model.predict(features), atol=1e-4
        )
        hash_peak_db = repro.connect()
        load_iris_table(hash_peak_db, 400)
        hash_runner = MlToSqlModelJoin(hash_peak_db, model)
        hash_runner.predict("iris", "id", list(FEATURE_COLUMNS))
        segmented_peak = db.last_profile.peak_memory_bytes
        hash_peak = hash_peak_db.last_profile.peak_memory_bytes
        assert segmented_peak < hash_peak / 5
