"""EXPLAIN ANALYZE row counters and IN-list predicates."""

import numpy as np
import pytest

from repro.db.engine import Database
from repro.errors import PlanError


@pytest.fixture
def populated(db: Database) -> Database:
    db.execute("CREATE TABLE t (id INTEGER, grp INTEGER, v FLOAT)")
    ids = np.arange(100, dtype=np.int64)
    db.table("t").append_columns(
        id=ids, grp=ids % 5, v=ids.astype(np.float32)
    )
    return db


class TestExplainAnalyze:
    def test_row_counts_annotated(self, populated):
        plan, result = populated.explain_analyze(
            "SELECT id FROM t WHERE grp = 0"
        )
        assert result.row_count == 20
        lines = plan.splitlines()
        scan_line = next(line for line in lines if "TableScan" in line)
        # the filter+project pair lowers to one fused compiled kernel
        filter_line = next(
            line
            for line in lines
            if "FusedPipeline" in line or "Filter" in line
        )
        assert "[rows: 100]" in scan_line
        assert "[rows: 20]" in filter_line

    def test_join_counts(self, populated):
        populated.execute("CREATE TABLE d (k INTEGER)")
        populated.execute("INSERT INTO d VALUES (0), (1)")
        plan, result = populated.explain_analyze(
            "SELECT t.id FROM t, d WHERE t.grp = d.k"
        )
        assert result.row_count == 40
        join_line = next(
            line for line in plan.splitlines() if "HashJoin" in line
        )
        assert "[rows: 40]" in join_line

    def test_aggregate_counts(self, populated):
        plan, result = populated.explain_analyze(
            "SELECT grp, SUM(v) AS s FROM t GROUP BY grp"
        )
        assert result.row_count == 5
        agg_line = next(
            line for line in plan.splitlines() if "Aggregate" in line
        )
        assert "[rows: 5]" in agg_line

    def test_rejects_non_select(self, populated):
        with pytest.raises(PlanError):
            populated.explain_analyze("DROP TABLE t")

    def test_profile_filled(self, populated):
        populated.explain_analyze("SELECT id FROM t")
        assert populated.last_profile.rows_returned == 100

    def test_plain_explain_has_no_counts(self, populated):
        plan = populated.explain("SELECT id FROM t")
        assert "[rows:" not in plan


class TestInPredicate:
    def test_in_list(self, populated):
        result = populated.execute(
            "SELECT id FROM t WHERE id IN (3, 5, 97) ORDER BY id"
        )
        assert [row[0] for row in result.rows] == [3, 5, 97]

    def test_not_in_list(self, populated):
        result = populated.execute(
            "SELECT id FROM t WHERE id NOT IN "
            f"({', '.join(str(i) for i in range(1, 100))})"
        )
        assert [row[0] for row in result.rows] == [0]

    def test_in_with_expressions(self, populated):
        result = populated.execute(
            "SELECT id FROM t WHERE grp IN (1 + 1, 8 - 4) AND id < 10 "
            "ORDER BY id"
        )
        assert [row[0] for row in result.rows] == [2, 4, 7, 9]

    def test_in_single_element(self, populated):
        result = populated.execute("SELECT id FROM t WHERE id IN (42)")
        assert result.rows == [(42,)]

    def test_in_not_confused_with_alias(self, populated):
        # "IN" is a stop word: "FROM t IN (...)" must not parse the
        # table alias as IN.
        from repro.db.sql.parser import parse_statement

        statement = parse_statement("SELECT a FROM t WHERE a IN (1)")
        assert statement.where is not None
