"""The SQL-queryable system catalog (docs/OBSERVABILITY.md).

Covers: name resolution and read-only guards, the query log (success,
error, fault, slow and fallback rows; the top-5-slowest ranking),
joins of ``system.*`` tables against user tables (bit-exact vs the
providers' Python-side state), live progress through
``system.active_queries`` from a second thread, query-log persistence
across a crash-kill restart, and the Prometheus round trip.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro
from repro.db import faults
from repro.db.engine import Database
from repro.db.faults import FaultInjector, InjectedFaultError
from repro.db.introspect import (
    metrics_to_prometheus,
    parse_prometheus_text,
)
from repro.db.introspect.log import LOG_FILE_NAME
from repro.errors import BindError, CatalogError


def _fill(db: Database, rows: int = 64) -> None:
    db.execute("CREATE TABLE t (a INTEGER, b DOUBLE)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, {i * 0.5})" for i in range(rows))
    )


class TestResolution:
    def test_system_tables_resolve_through_the_planner(self, db):
        _fill(db)
        result = db.execute("SELECT name FROM system.tables")
        assert result.rows == [("t",)]

    def test_explain_over_a_system_scan(self, db):
        plan = db.explain("SELECT * FROM system.queries")
        assert "TableScan(system.queries)" in plan

    def test_unknown_system_table(self, db):
        with pytest.raises(CatalogError, match="system.nope"):
            db.execute("SELECT * FROM system.nope")

    def test_alias_binds_the_last_component(self, db):
        _fill(db)
        result = db.execute(
            "SELECT columns.column_name FROM system.columns "
            "WHERE columns.table_name = 't' ORDER BY column_name"
        )
        assert result.rows == [("a",), ("b",)]

    def test_read_only_guards(self, db):
        for sql in (
            "INSERT INTO system.queries VALUES (1)",
            "CREATE TABLE system.extra (a INTEGER)",
            "DROP TABLE system.queries",
        ):
            with pytest.raises(CatalogError, match="read-only"):
                db.execute(sql)

    def test_every_documented_table_answers(self, db):
        _fill(db)
        for name in db.introspection.table_names():
            result = db.execute(f"SELECT * FROM {name}")
            assert result.schema.names  # resolves with a real schema


class TestQueryLog:
    def test_success_row_with_resource_profile(self, db):
        _fill(db)
        db.execute("SELECT a FROM t WHERE a >= 0")
        result = db.execute(
            "SELECT sql, status, rows_returned, rows_read, bytes_read, "
            "blocks_scanned FROM system.queries "
            "WHERE sql = 'SELECT a FROM t WHERE a >= 0'"
        )
        (row,) = result.rows
        assert row[1] == "ok"
        assert row[2] == 64  # rows returned
        assert row[3] == 64  # rows read
        assert row[4] > 0  # bytes read
        assert row[5] >= 1  # blocks scanned

    def test_top_5_slowest_ranking(self, db):
        _fill(db)
        for limit in (1, 2, 3):
            db.execute(f"SELECT a FROM t LIMIT {limit}")
        # Bit-exact expectation from the log's state as the ranking
        # query will see it (the ranking query itself is only logged
        # after it finishes, so it cannot appear in its own snapshot).
        expected = sorted(
            (entry["latency_seconds"] for entry in db.query_log.entries()),
            reverse=True,
        )[:5]
        result = db.execute(
            "SELECT sql, latency_seconds FROM system.queries "
            "ORDER BY latency_seconds DESC LIMIT 5"
        )
        assert 1 <= result.row_count <= 5
        latencies = [row[1] for row in result.rows]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies == expected

    def test_error_row_carries_the_taxonomy_class(self, db):
        _fill(db)
        with pytest.raises(BindError):
            db.execute("SELECT missing_column FROM t")
        result = db.execute(
            "SELECT status, error_class FROM system.queries "
            "WHERE status = 'error'"
        )
        assert ("error", "BindError") in result.rows

    def test_injected_fault_still_lands_a_row(self):
        db = repro.connect(parallelism=4, task_retries=0)
        db.execute(
            "CREATE TABLE p (k INTEGER, v DOUBLE) "
            "PARTITION BY (k) PARTITIONS 4"
        )
        db.execute(
            "INSERT INTO p VALUES "
            + ", ".join(f"({i}, {i * 1.0})" for i in range(400))
        )
        injector = FaultInjector(seed=3).raise_with_probability(
            "worker.morsel", 1.0
        )
        with faults.active(injector):
            with pytest.raises(InjectedFaultError):
                db.execute("SELECT k, v FROM p WHERE k >= 0", parallel=True)
        result = db.execute(
            "SELECT error_class, parallel FROM system.queries "
            "WHERE status = 'error'"
        )
        assert ("InjectedFaultError", True) in result.rows
        db.close()

    def test_slow_marking_and_counter(self):
        db = repro.connect(slow_query_seconds=0.0)
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 1")
        result = db.execute(
            "SELECT slow FROM system.queries WHERE slow = TRUE"
        )
        assert result.row_count >= 1
        assert db.metrics.counter("query.slow").value >= 1
        db.close()

    def test_collection_off_leaves_no_rows(self):
        db = repro.connect(collect_query_log=False)
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 1")
        assert len(db.query_log) == 0
        assert db.execute("SELECT * FROM system.queries").row_count == 0
        db.close()

    def test_ring_buffer_capacity(self):
        db = Database(query_log_capacity=4)
        _fill(db)
        for limit in range(1, 9):
            db.execute(f"SELECT a FROM t LIMIT {limit}")
        assert len(db.query_log) == 4
        ids = [entry["query_id"] for entry in db.query_log.entries()]
        assert ids == sorted(ids)

    def test_morsel_and_retry_accounting(self):
        db = repro.connect(parallelism=4, task_retries=2)
        db.execute(
            "CREATE TABLE p (k INTEGER, v DOUBLE) "
            "PARTITION BY (k) PARTITIONS 4"
        )
        db.execute(
            "INSERT INTO p VALUES "
            + ", ".join(f"({i}, {i * 1.0})" for i in range(400))
        )
        injector = FaultInjector(seed=5).raise_with_probability(
            "worker.morsel", 0.2
        )
        with faults.active(injector):
            db.execute("SELECT k, v FROM p WHERE k >= 0", parallel=True)
        result = db.execute(
            "SELECT morsels, retries FROM system.queries "
            "WHERE parallel = TRUE AND status = 'ok'"
        )
        (row,) = result.rows
        assert row[0] >= 4  # every pipeline pulled morsels
        assert row[1] >= 1  # the injected crashes forced retries
        db.close()


class TestJoinsAgainstUserTables:
    def test_system_columns_join_bit_exact(self, db):
        _fill(db)
        db.execute("CREATE TABLE notes (column_name VARCHAR, note VARCHAR)")
        db.execute(
            "INSERT INTO notes VALUES ('a', 'key'), ('b', 'value')"
        )
        result = db.execute(
            "SELECT c.column_name, n.note FROM system.columns c "
            "JOIN notes n ON c.column_name = n.column_name "
            "WHERE c.table_name = 't' ORDER BY column_name"
        )
        expected = [
            (column.name, note)
            for column, note in zip(
                db.table("t").schema, ("key", "value")
            )
        ]
        assert result.rows == expected

    def test_storage_blocks_join_on_persistent_db(self, tmp_path):
        root = str(tmp_path / "store")
        db = repro.connect(path=root)
        _fill(db, rows=256)
        db.close()
        db = repro.connect(path=root)
        db.execute("CREATE TABLE labels (codec VARCHAR, label VARCHAR)")
        db.execute(
            "INSERT INTO labels VALUES ('sequence', 'delta-friendly'), "
            "('raw', 'uncompressed')"
        )
        result = db.execute(
            "SELECT b.column_name, b.codec, l.label "
            "FROM system.storage_blocks b "
            "JOIN labels l ON b.codec = l.codec "
            "WHERE b.table_name = 't' ORDER BY column_name"
        )
        # Bit-exact vs the partition's own footer metadata.
        expected = sorted(
            (
                entry["column"],
                entry["codec"],
                "delta-friendly"
                if entry["codec"] == "sequence"
                else "uncompressed",
            )
            for partition in db.table("t").partitions
            for entry in partition.disk_block_metadata()
            if entry["codec"] in ("sequence", "raw")
        )
        assert sorted(result.rows) == expected
        assert result.rows  # the join actually matched disk codecs
        db.close()

    def test_zone_maps_in_storage_blocks(self, tmp_path):
        db = repro.connect(path=str(tmp_path / "zm"))
        _fill(db, rows=100)
        db.close()
        db = repro.connect(path=str(tmp_path / "zm"))
        result = db.execute(
            "SELECT min_value, max_value FROM system.storage_blocks "
            "WHERE column_name = 'a'"
        )
        assert result.rows == [(0.0, 99.0)]
        db.close()


class TestActiveQueries:
    def test_query_observes_itself(self, db):
        result = db.execute(
            "SELECT sql, morsels_completed FROM system.active_queries"
        )
        (row,) = result.rows
        assert "system.active_queries" in row[0]

    def test_progress_visible_from_a_second_thread(self):
        db = repro.connect(parallelism=2)
        db.execute(
            "CREATE TABLE p (k INTEGER, v DOUBLE) "
            "PARTITION BY (k) PARTITIONS 2"
        )
        db.execute(
            "INSERT INTO p VALUES "
            + ", ".join(f"({i}, {i * 1.0})" for i in range(600))
        )
        observed: list[tuple] = []

        def watch() -> None:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rows = [
                    profile
                    for profile in db.active_queries.snapshot()
                    if "FROM p" in profile.sql
                ]
                if rows:
                    profile = rows[0]
                    observed.append(
                        (
                            profile.sql,
                            profile.elapsed_seconds,
                            profile.morsels_completed(),
                            profile.morsels_total,
                        )
                    )
                    return
                time.sleep(0.001)

        watcher = threading.Thread(target=watch)
        injector = FaultInjector(seed=1).delay_ms("worker.morsel", 20.0)
        with faults.active(injector):
            watcher.start()
            db.execute("SELECT k, v FROM p WHERE k >= 0", parallel=True)
            watcher.join()
        assert observed, "watcher never saw the running query"
        sql, elapsed, _completed, _total = observed[0]
        assert "FROM p" in sql
        assert elapsed >= 0.0
        # The query is gone from the registry once finished.
        assert all(
            "FROM p" not in profile.sql
            for profile in db.active_queries.snapshot()
        )
        db.close()


class TestPersistence:
    def test_log_survives_crash_kill_restart(self, tmp_path):
        root = str(tmp_path / "crash")
        db = repro.connect(path=root)
        _fill(db)
        db.execute("SELECT a FROM t WHERE a < 5")
        db.checkpoint()
        # Crash-kill: no close(); the JSONL file is flushed per query.
        del db
        db = repro.connect(path=root)
        result = db.execute(
            "SELECT query_id, sql, status FROM system.queries "
            "WHERE sql = 'SELECT a FROM t WHERE a < 5'"
        )
        assert result.row_count == 1
        assert result.rows[0][2] == "ok"
        # Fresh queries continue the persisted id sequence.
        restored_max = max(
            entry["query_id"] for entry in db.query_log.entries()
        )
        db.execute("SELECT a FROM t LIMIT 1")
        new_max = max(
            entry["query_id"] for entry in db.query_log.entries()
        )
        assert new_max > restored_max
        db.close()

    def test_torn_tail_line_is_skipped(self, tmp_path):
        root = str(tmp_path / "torn")
        db = repro.connect(path=root)
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 1")
        db.close()
        log_path = tmp_path / "torn" / LOG_FILE_NAME
        with open(log_path, "a") as handle:
            handle.write('{"query_id": 99, "sql": "torn')  # no newline
        db = repro.connect(path=root)
        entries = db.query_log.entries()
        assert entries  # intact rows restored
        assert all(entry["sql"] != "torn" for entry in entries)
        db.close()

    def test_log_file_is_append_only_jsonl(self, tmp_path):
        root = str(tmp_path / "jsonl")
        db = repro.connect(path=root)
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 2")
        db.close()
        with open(tmp_path / "jsonl" / LOG_FILE_NAME) as handle:
            lines = [line for line in handle if line.strip()]
        parsed = [json.loads(line) for line in lines]
        assert any(
            entry["sql"] == "SELECT a FROM t LIMIT 2" for entry in parsed
        )


class TestPrometheus:
    def test_round_trip(self, db):
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 1")
        text = db.export_metrics_text()
        parsed = parse_prometheus_text(text)
        assert "repro_query_count" in parsed
        assert parsed["repro_query_count"]["type"] == "counter"
        latency = parsed["repro_query_latency"]
        assert latency["type"] == "summary"
        assert latency["count"] >= 1
        # Round trip: re-rendering the engine snapshot is stable.
        assert metrics_to_prometheus(db.metrics.snapshot()) is not None

    def test_values_match_the_registry(self, db):
        _fill(db)
        db.execute("SELECT a FROM t LIMIT 1")
        parsed = parse_prometheus_text(db.export_metrics_text())
        assert (
            parsed["repro_query_count"]["value"]
            == db.metrics.counter("query.count").value
        )


class TestFallbackFlag:
    def test_compiled_flag_set_for_fused_queries(self, db):
        _fill(db)
        db.execute("SELECT a, b FROM t WHERE a > 3")
        result = db.execute(
            "SELECT compiled FROM system.queries "
            "WHERE sql = 'SELECT a, b FROM t WHERE a > 3'"
        )
        assert result.rows == [(True,)]
