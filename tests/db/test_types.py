import numpy as np
import pytest

from repro.db.types import (
    SqlType,
    coerce_array,
    common_numeric_type,
    parse_type_name,
    type_of_dtype,
)
from repro.errors import TypeMismatchError


class TestParseTypeName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", SqlType.INTEGER),
            ("integer", SqlType.INTEGER),
            ("BIGINT", SqlType.INTEGER),
            ("FLOAT", SqlType.FLOAT),
            ("real", SqlType.FLOAT),
            ("DOUBLE", SqlType.DOUBLE),
            ("VARCHAR", SqlType.VARCHAR),
            ("Text", SqlType.VARCHAR),
            ("BOOLEAN", SqlType.BOOLEAN),
        ],
    )
    def test_known_names(self, name, expected):
        assert parse_type_name(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type_name("BLOB")


class TestDtypeMapping:
    def test_float32_maps_to_float(self):
        assert SqlType.FLOAT.numpy_dtype == np.dtype(np.float32)

    def test_integer_is_int64(self):
        assert SqlType.INTEGER.numpy_dtype == np.dtype(np.int64)

    def test_type_of_dtype_roundtrip(self):
        for sql_type in (SqlType.INTEGER, SqlType.FLOAT, SqlType.DOUBLE):
            assert type_of_dtype(sql_type.numpy_dtype) is sql_type

    def test_type_of_string_dtype(self):
        assert type_of_dtype(np.dtype("U10")) is SqlType.VARCHAR

    def test_byte_width(self):
        assert SqlType.FLOAT.byte_width == 4
        assert SqlType.INTEGER.byte_width == 8
        assert SqlType.VARCHAR.byte_width == 16


class TestPromotion:
    def test_int_float_promotes_to_float(self):
        assert (
            common_numeric_type(SqlType.INTEGER, SqlType.FLOAT)
            is SqlType.FLOAT
        )

    def test_float_double_promotes_to_double(self):
        assert (
            common_numeric_type(SqlType.FLOAT, SqlType.DOUBLE)
            is SqlType.DOUBLE
        )

    def test_varchar_arithmetic_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(SqlType.VARCHAR, SqlType.INTEGER)


class TestCoerceArray:
    def test_int_to_float_narrows(self):
        result = coerce_array(np.array([1, 2]), SqlType.FLOAT)
        assert result.dtype == np.float32

    def test_string_into_numeric_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array(["a"]), SqlType.FLOAT)

    def test_numeric_into_varchar_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array([1.0]), SqlType.VARCHAR)

    def test_varchar_accepts_objects(self):
        result = coerce_array(np.array(["a", "b"]), SqlType.VARCHAR)
        assert result.dtype == object
