"""Persistent columnar storage (docs/STORAGE.md).

Covers the block codecs (golden choices + bit-exact round trips,
including NaN bit patterns), the column-file format, the LRU buffer
pool, zone-map block skipping on disk scans, atomic checkpointing with
a simulated crash between data write and manifest rename, and the
restart-warm model cache (fig8 dense-grid models reopen bit-exact and
the first ModelJoin after a restart is a cache hit).
"""

import numpy as np
import pytest

import repro
from repro.core.registry import publish_model
from repro.db.storage import (
    BufferPool,
    ColumnFileReader,
    ColumnFileWriter,
    DiskPartition,
    write_partition,
)
from repro.db.storage import codecs
from repro.db.storage.checkpoint import MANIFEST_NAME, load_manifest
from repro.db.column import ColumnRange
from repro.db.schema import Column, Schema
from repro.db.types import SqlType
from repro.errors import ExecutionError
from repro.workloads.models import make_dense_model

RNG_SEED = 20260806


def assert_bit_equal(actual: np.ndarray, expected: np.ndarray):
    """Bit-exact equality (NaN payloads included)."""
    assert len(actual) == len(expected)
    if expected.dtype == object:
        assert actual.tolist() == expected.tolist()
        return
    assert actual.dtype == expected.dtype
    assert actual.tobytes() == expected.tobytes()


def sample_arrays(rows: int, seed: int = RNG_SEED) -> dict[SqlType, np.ndarray]:
    rng = np.random.default_rng(seed)
    floats = rng.random(rows, dtype=np.float32)
    floats[::17] = np.nan
    return {
        SqlType.INTEGER: rng.integers(-1000, 1000, rows, dtype=np.int64),
        SqlType.FLOAT: floats,
        SqlType.DOUBLE: rng.standard_normal(rows),
        SqlType.BOOLEAN: rng.random(rows) < 0.5,
        SqlType.VARCHAR: np.array(
            [f"value-{i % 13}-é" for i in range(rows)], dtype=object
        ),
    }


class TestCodecs:
    def test_round_trip_every_codec(self):
        for sql_type, array in sample_arrays(1000).items():
            applicable = [codecs.PLAIN, codecs.DICT]
            if sql_type is not SqlType.VARCHAR:
                applicable.append(codecs.RLE)
            if sql_type is SqlType.INTEGER:
                applicable.append(codecs.BITPACK)
                applicable.append(codecs.SEQUENCE)
            for codec in applicable:
                encoded = codecs.encode_with(codec, array, sql_type)
                decoded = codecs.decode(
                    encoded.codec,
                    encoded.payload,
                    encoded.params,
                    sql_type,
                    len(array),
                )
                assert_bit_equal(decoded, array)

    def test_empty_block_round_trips(self):
        for sql_type in SqlType:
            array = np.empty(0, dtype=sql_type.numpy_dtype)
            encoded = codecs.encode(array, sql_type)
            decoded = codecs.decode(
                encoded.codec, encoded.payload, encoded.params, sql_type, 0
            )
            assert len(decoded) == 0

    def test_nan_bit_patterns_survive_rle(self):
        # Three distinct NaN payloads in runs: rle must compare bits,
        # not values (NaN != NaN would split and reorder runs).
        payloads = np.array(
            [0x7FC00001, 0x7FC00001, 0x7FC00002, 0x7F800001],
            dtype=np.uint32,
        ).view(np.float32)
        encoded = codecs.encode_with(codecs.RLE, payloads, SqlType.FLOAT)
        decoded = codecs.decode(
            codecs.RLE, encoded.payload, encoded.params, SqlType.FLOAT, 4
        )
        assert_bit_equal(decoded, payloads)

    # -- golden choices: the chooser must pick the obviously right codec
    def test_chooses_bitpack_for_dense_integer_range(self):
        rng = np.random.default_rng(RNG_SEED)
        array = rng.integers(0, 1000, 4096, dtype=np.int64)
        assert codecs.choose_codec(array, SqlType.INTEGER) == codecs.BITPACK
        encoded = codecs.encode(array, SqlType.INTEGER)
        assert len(encoded.payload) < array.nbytes / 4

    def test_chooses_sequence_for_row_ids(self):
        array = np.arange(7, 7 + 3 * 4096, 3, dtype=np.int64)
        assert (
            codecs.choose_codec(array, SqlType.INTEGER) == codecs.SEQUENCE
        )
        encoded = codecs.encode(array, SqlType.INTEGER)
        assert encoded.codec == codecs.SEQUENCE
        assert encoded.payload == b""
        decoded = codecs.decode(
            encoded.codec, encoded.payload, encoded.params,
            SqlType.INTEGER, len(array),
        )
        assert_bit_equal(decoded, array)

    def test_sequence_falls_back_when_sample_lies(self):
        # Constant delta at every sampled position, broken in between:
        # encode must verify the full block and fall back to bitpack.
        array = np.arange(4096, dtype=np.int64)
        array[1] = 99  # never sampled at stride 8
        assert (
            codecs.choose_codec(array, SqlType.INTEGER) == codecs.SEQUENCE
        )
        encoded = codecs.encode(array, SqlType.INTEGER)
        assert encoded.codec == codecs.BITPACK
        decoded = codecs.decode(
            encoded.codec, encoded.payload, encoded.params,
            SqlType.INTEGER, len(array),
        )
        assert_bit_equal(decoded, array)

    def test_chooses_rle_for_constant_runs(self):
        array = np.repeat(np.float64([1.5, 2.5, 3.5]), 2000)
        assert codecs.choose_codec(array, SqlType.DOUBLE) == codecs.RLE

    def test_chooses_dict_for_low_cardinality_strings(self):
        array = np.array(
            [("red", "green", "blue")[i % 3] for i in range(3000)],
            dtype=object,
        )
        assert codecs.choose_codec(array, SqlType.VARCHAR) == codecs.DICT

    def test_keeps_plain_for_incompressible_doubles(self):
        rng = np.random.default_rng(3)
        array = rng.standard_normal(4096)
        assert codecs.choose_codec(array, SqlType.DOUBLE) == codecs.PLAIN

    def test_bitpack_rejects_wide_spans(self):
        # A span wider than MAX_PACK_BITS must fall back to plain
        # instead of overflowing the delta arithmetic.
        array = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max])
        encoded = codecs.encode_with(codecs.BITPACK, array, SqlType.INTEGER)
        assert encoded.codec == codecs.PLAIN
        decoded = codecs.decode(
            encoded.codec, encoded.payload, encoded.params, SqlType.INTEGER, 2
        )
        assert_bit_equal(decoded, array)

    def test_unknown_codec_raises(self):
        with pytest.raises(ExecutionError):
            codecs.decode("lz4", b"", {}, SqlType.INTEGER, 1)


class TestColumnFile:
    def test_write_read_round_trip_with_zone_maps(self, tmp_path):
        path = tmp_path / "c0_id.col"
        blocks = [
            np.arange(0, 500, dtype=np.int64),
            np.arange(500, 1000, dtype=np.int64),
            np.arange(1000, 1100, dtype=np.int64),
        ]
        with ColumnFileWriter(path, SqlType.INTEGER) as writer:
            for block in blocks:
                writer.append_block(block)
        reader = ColumnFileReader(path, SqlType.INTEGER)
        assert reader.num_blocks == 3
        assert [e["rows"] for e in reader.blocks] == [500, 500, 100]
        assert reader.blocks[1]["min"] == 500
        assert reader.blocks[1]["max"] == 999
        for index, block in enumerate(blocks):
            assert_bit_equal(reader.read_block(index), block)
        reader.close()

    def test_nan_counts_recorded_as_nulls(self, tmp_path):
        path = tmp_path / "c0_f.col"
        array = np.array([1.0, np.nan, 2.0, np.nan, np.nan], dtype=np.float32)
        with ColumnFileWriter(path, SqlType.FLOAT) as writer:
            writer.append_block(array)
        reader = ColumnFileReader(path, SqlType.FLOAT)
        entry = reader.blocks[0]
        assert entry["nulls"] == 3
        assert entry["min"] == 1.0 and entry["max"] == 2.0
        reader.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.col"
        path.write_bytes(b"NOTACOLF" * 4)
        with pytest.raises(ExecutionError, match="magic"):
            ColumnFileReader(path, SqlType.INTEGER)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "torn.col"
        with ColumnFileWriter(path, SqlType.INTEGER) as writer:
            writer.append_block(np.arange(10, dtype=np.int64))
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # lose half the tail magic
        with pytest.raises(ExecutionError, match="tail"):
            ColumnFileReader(path, SqlType.INTEGER)

    def test_type_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c0_x.col"
        with ColumnFileWriter(path, SqlType.INTEGER) as writer:
            writer.append_block(np.arange(4, dtype=np.int64))
        with pytest.raises(ExecutionError, match="INTEGER"):
            ColumnFileReader(path, SqlType.DOUBLE)


class TestBufferPool:
    def loader(self, rows=1000):
        return lambda: np.zeros(rows, dtype=np.int64)

    def test_hit_miss_accounting(self):
        pool = BufferPool(capacity_bytes=1 << 20)
        pool.get("a", self.loader())
        pool.get("a", self.loader())
        assert pool.statistics.misses == 1
        assert pool.statistics.hits == 1
        assert len(pool) == 1

    def test_lru_eviction_respects_cap(self):
        frame = 1000 * 8
        pool = BufferPool(capacity_bytes=3 * frame)
        for key in "abcd":
            pool.get(key, self.loader())
        assert pool.statistics.evictions == 1
        assert pool.resident_bytes <= 3 * frame
        # "a" was least recently used: re-getting it is a miss,
        # re-getting "d" is a hit.
        pool.get("d", self.loader())
        assert pool.statistics.hits == 1
        pool.get("a", self.loader())
        assert pool.statistics.misses == 6 - 1  # 4 first gets + reload

    def test_pinned_frames_survive_eviction(self):
        frame = 1000 * 8
        pool = BufferPool(capacity_bytes=2 * frame)
        pool.get("pinned", self.loader(), pin=True)
        for key in "xyz":
            pool.get(key, self.loader())
        with pool._lock:
            assert "pinned" in pool._frames
        pool.unpin("pinned")
        for key in "uvw":
            pool.get(key, self.loader())
        with pool._lock:
            assert "pinned" not in pool._frames

    def test_invalidate_prefix(self):
        pool = BufferPool(capacity_bytes=1 << 20)
        pool.get(("/data/t1/p0", 0, 0), self.loader())
        pool.get(("/data/t1/p0", 1, 0), self.loader())
        pool.get(("/data/t2/p0", 0, 0), self.loader())
        assert pool.invalidate_prefix("/data/t1") == 2
        assert len(pool) == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_bytes=0)


class TestDiskPartition:
    def schema(self):
        return Schema(
            (Column("id", SqlType.INTEGER), Column("v", SqlType.DOUBLE))
        )

    def test_round_trip_and_zone_map_pruning(self, tmp_path):
        schema = self.schema()
        db = repro.connect()
        db.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        rng = np.random.default_rng(5)
        db.table("t").append_columns(
            id=np.arange(10_000, dtype=np.int64),
            v=rng.standard_normal(10_000),
        )
        source_blocks = db.table("t").partitions[0].blocks()
        rows = write_partition(tmp_path / "p0", schema, source_blocks)
        assert rows == 10_000

        pool = BufferPool(capacity_bytes=1 << 22)
        partition = DiskPartition(schema, tmp_path / "p0", pool)
        assert partition.row_count == 10_000
        # 10k rows in 4096-row blocks -> 3 blocks; id <= 100 touches 1.
        blocks = partition.blocks()
        assert len(blocks) == 3
        ranges = [ColumnRange("id", None, 100.0)]
        surviving = [
            b for b in blocks if b.may_match(schema, ranges)
        ]
        assert len(surviving) == 1
        batches = list(partition.scan(ranges=ranges))
        scanned = np.concatenate([b.column("id") for b in batches])
        assert scanned.max() < 4096  # only the first block was read
        partition.close()

    def test_overlay_appends_visible_before_merge(self, tmp_path):
        schema = self.schema()
        (tmp_path / "p0").mkdir()
        for position, column in enumerate(schema):
            with ColumnFileWriter(
                tmp_path / "p0" / f"c{position}_{column.name}.col",
                column.sql_type,
            ) as writer:
                writer.append_block(
                    np.arange(8, dtype=column.sql_type.numpy_dtype)
                )
        pool = BufferPool(capacity_bytes=1 << 20)
        partition = DiskPartition(schema, tmp_path / "p0", pool)
        from repro.db.vector import VectorBatch

        partition.append(
            VectorBatch(
                schema,
                [
                    np.array([100, 101], dtype=np.int64),
                    np.array([1.0, 2.0]),
                ],
            )
        )
        assert partition.row_count == 10
        ids = np.concatenate(
            [batch.column("id") for batch in partition.scan()]
        )
        assert sorted(ids.tolist()) == list(range(8)) + [100, 101]
        partition.close()


def make_persistent_db(path, rows=20_000, partitions=2, parallelism=1):
    db = repro.connect(parallelism=parallelism, path=str(path))
    db.execute(
        "CREATE TABLE fact (id BIGINT, small BIGINT, f FLOAT, "
        "d DOUBLE, flag BOOLEAN, tag VARCHAR) "
        f"PARTITIONS {partitions}"
    )
    rng = np.random.default_rng(RNG_SEED)
    floats = rng.random(rows, dtype=np.float32)
    floats[::31] = np.nan
    db.table("fact").append_columns(
        id=np.arange(rows, dtype=np.int64),
        small=rng.integers(0, 16, rows, dtype=np.int64),
        f=floats,
        d=rng.standard_normal(rows),
        flag=rng.random(rows) < 0.5,
        tag=np.array([f"t{i % 11}" for i in range(rows)], dtype=object),
    )
    return db


def full_table(db, columns="id, small, f, d, flag, tag"):
    return db.execute(f"SELECT {columns} FROM fact ORDER BY id")


class TestPersistentDatabase:
    def test_random_table_reopens_bit_exact(self, tmp_path):
        db = make_persistent_db(tmp_path / "db")
        before = full_table(db)
        db.close()

        reopened = repro.connect(path=str(tmp_path / "db"))
        table = reopened.table("fact")
        assert table.disk_resident
        assert table.row_count == 20_000
        after = full_table(reopened)
        for name in before.schema.names:
            assert_bit_equal(
                np.asarray(after.column(name)),
                np.asarray(before.column(name)),
            )
        reopened.close()

    def test_zone_map_skipping_on_reopened_table(self, tmp_path):
        db = make_persistent_db(tmp_path / "db")
        db.close()
        reopened = repro.connect(path=str(tmp_path / "db"))
        result = reopened.execute(
            "SELECT id FROM fact WHERE id < 100 ORDER BY id"
        )
        assert result.column("id").tolist() == list(range(100))
        skipped = reopened.metrics.counter("storage.blocks_skipped").value
        read = reopened.metrics.counter("storage.blocks_read").value
        # 20k rows split 10k/10k across 2 partitions, 3 blocks each:
        # id < 100 lives in the first block of the first partition, so
        # 5 of the 6 blocks are skipped from footer zone maps alone.
        assert skipped == 5
        assert read == 1
        reopened.close()

    def test_projection_fetches_only_needed_column_files(self, tmp_path):
        db = make_persistent_db(tmp_path / "db")
        db.close()
        reopened = repro.connect(path=str(tmp_path / "db"))
        reopened.execute("SELECT d FROM fact ORDER BY d")
        fetched = reopened.last_profile.counters.get("scan.columns_fetched")
        assert fetched == 2  # one `d` column file per partition
        reopened.close()

    def test_appends_after_reopen_are_durable(self, tmp_path):
        db = make_persistent_db(tmp_path / "db", rows=1000)
        db.close()
        second = repro.connect(path=str(tmp_path / "db"))
        second.execute(
            "INSERT INTO fact VALUES "
            "(5000, 1, 0.5, 0.25, TRUE, 'late')"
        )
        assert second.table("fact").row_count == 1001
        second.close()
        third = repro.connect(path=str(tmp_path / "db"))
        result = third.execute(
            "SELECT id, tag FROM fact WHERE id = 5000 ORDER BY id"
        )
        assert result.column("tag").tolist() == ["late"]
        assert third.table("fact").row_count == 1001
        third.close()

    def test_uid_floor_prevents_collisions_after_reopen(self, tmp_path):
        db = make_persistent_db(tmp_path / "db", rows=100)
        fact_uid = db.table("fact").uid
        db.close()
        reopened = repro.connect(path=str(tmp_path / "db"))
        assert reopened.table("fact").uid == fact_uid
        reopened.execute("CREATE TABLE other (x INTEGER)")
        assert reopened.table("other").uid > fact_uid
        reopened.close()

    def test_buffer_pool_cap_below_table_size_still_scans(self, tmp_path):
        db = make_persistent_db(tmp_path / "db", rows=50_000)
        before = full_table(db)
        db.close()
        table_bytes = 50_000 * (8 + 8 + 4 + 8 + 1 + 8)
        cap = 256 * 1024
        assert cap < table_bytes
        reopened = repro.connect(
            path=str(tmp_path / "db"), buffer_pool_bytes=cap
        )
        after = full_table(reopened)
        assert_bit_equal(
            np.asarray(after.column("d")), np.asarray(before.column("d"))
        )
        pool = reopened.storage.buffer_pool
        assert pool.statistics.evictions > 0
        assert reopened.metrics.counter("bufferpool.evictions").value > 0
        reopened.close()


class TestCrashSafety:
    def test_crash_between_data_write_and_manifest_rename(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "db"
        db = make_persistent_db(root, rows=1000)
        before = full_table(db)
        db.checkpoint()

        # More data arrives, then the process dies after the new
        # generation is on disk but before the manifest rename.
        db.execute(
            "INSERT INTO fact VALUES (9999, 0, 0.0, 0.0, FALSE, 'lost')"
        )
        import repro.db.storage.checkpoint as checkpoint_module

        def power_cut(src, dst):
            raise OSError("simulated crash before rename")

        with monkeypatch.context() as patch:
            patch.setattr(checkpoint_module.os, "replace", power_cut)
            with pytest.raises(OSError, match="simulated crash"):
                db.checkpoint()
        assert (root / (MANIFEST_NAME + ".tmp")).exists()

        # Reopen: the committed manifest is the truth — the torn
        # checkpoint (and its row) never happened.
        reopened = repro.connect(path=str(root))
        assert reopened.table("fact").row_count == 1000
        after = full_table(reopened)
        assert_bit_equal(
            np.asarray(after.column("id")),
            np.asarray(before.column("id")),
        )
        reopened.close()

    def test_leftover_tmp_manifest_is_ignored(self, tmp_path):
        root = tmp_path / "db"
        db = make_persistent_db(root, rows=500)
        db.close()
        (root / (MANIFEST_NAME + ".tmp")).write_text("{torn garbage")
        reopened = repro.connect(path=str(root))
        assert reopened.table("fact").row_count == 500
        reopened.close()

    def test_unsupported_format_version_rejected(self, tmp_path):
        root = tmp_path / "db"
        db = make_persistent_db(root, rows=10)
        db.close()
        manifest = load_manifest(root)
        manifest["format_version"] = 99
        import json

        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ExecutionError, match="version"):
            repro.connect(path=str(root))


class TestWarmModelCache:
    def publish_and_score(self, db, model):
        publish_model(db, "clf", model)
        return db.execute(
            "SELECT id, prediction_0 FROM fact "
            "MODEL JOIN clf USING (f, f, f, f) ORDER BY id"
        )

    def test_fig8_model_survives_restart_bit_exact(self, tmp_path):
        model = make_dense_model(32, 2, input_width=4, seed=7)
        db = make_persistent_db(tmp_path / "db", rows=2_000)
        before = self.publish_and_score(db, model)
        model_rows = db.execute(
            "SELECT * FROM clf_table ORDER BY node_in, node"
        )
        db.close()

        reopened = repro.connect(path=str(tmp_path / "db"))
        assert "clf" in reopened.catalog.models
        model_rows_after = reopened.execute("SELECT * FROM clf_table ORDER BY node_in, node")
        for name in model_rows.schema.names:
            assert_bit_equal(
                np.asarray(model_rows_after.column(name)),
                np.asarray(model_rows.column(name)),
            )
        after = reopened.execute(
            "SELECT id, prediction_0 FROM fact "
            "MODEL JOIN clf USING (f, f, f, f) ORDER BY id"
        )
        assert_bit_equal(
            np.asarray(after.column("prediction_0")),
            np.asarray(before.column("prediction_0")),
        )
        reopened.close()

    def test_first_modeljoin_after_restart_is_cache_hit(self, tmp_path):
        model = make_dense_model(32, 2, input_width=4, seed=7)
        db = make_persistent_db(tmp_path / "db", rows=2_000)
        self.publish_and_score(db, model)
        db.close()

        reopened = repro.connect(path=str(tmp_path / "db"))
        reopened.execute(
            "SELECT id, prediction_0 FROM fact "
            "MODEL JOIN clf USING (f, f, f, f) ORDER BY id"
        )
        stats = reopened.model_cache.statistics()
        assert stats["hits"] >= 1
        assert stats["misses"] == 0
        reopened.close()
