import numpy as np
import pytest

from repro.db.column import ColumnRange
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import DatabaseError


@pytest.fixture
def schema() -> Schema:
    return Schema.of(("id", SqlType.INTEGER), ("v", SqlType.FLOAT))


def fill(table: Table, n: int) -> None:
    table.append_columns(
        id=np.arange(n, dtype=np.int64),
        v=np.arange(n, dtype=np.float32),
    )


class TestBasics:
    def test_row_count(self, schema):
        table = Table("t", schema)
        fill(table, 10)
        assert table.row_count == 10

    def test_append_rows(self, schema):
        table = Table("t", schema)
        table.append_rows([(1, 2.0), (2, 4.0)])
        rows = [row for batch in table.scan() for row in batch.to_rows()]
        assert rows == [(1, 2.0), (2, 4.0)]

    def test_invalid_partition_count(self, schema):
        with pytest.raises(DatabaseError):
            Table("t", schema, num_partitions=0)

    def test_unknown_partition_key(self, schema):
        from repro.errors import BindError

        with pytest.raises(BindError):
            Table("t", schema, partition_key="nope")

    def test_nominal_bytes_grows(self, schema):
        table = Table("t", schema)
        before = table.nominal_bytes()
        fill(table, 100)
        assert table.nominal_bytes() > before


class TestPartitioning:
    def test_hash_partitioning_covers_all_rows(self, schema):
        table = Table("t", schema, num_partitions=4, partition_key="id")
        fill(table, 1000)
        assert (
            sum(partition.row_count for partition in table.partitions)
            == 1000
        )
        # Unique key => reasonably balanced partitions.
        counts = [partition.row_count for partition in table.partitions]
        assert min(counts) > 0

    def test_hash_routing_is_deterministic(self, schema):
        table = Table("t", schema, num_partitions=3, partition_key="id")
        fill(table, 30)
        for index, partition in enumerate(table.partitions):
            for batch in partition.scan():
                assert (batch.column("id") % 3 == index).all()

    def test_round_robin_without_key(self, schema):
        table = Table("t", schema, num_partitions=3)
        fill(table, 10)
        counts = [partition.row_count for partition in table.partitions]
        assert sorted(counts) == [3, 3, 4]

    def test_partition_preserves_relative_order(self, schema):
        table = Table(
            "t",
            schema,
            num_partitions=4,
            partition_key="id",
            sort_key=("id",),
        )
        fill(table, 500)
        for partition in table.partitions:
            ids = np.concatenate(
                [batch.column("id") for batch in partition.scan()]
            )
            assert (np.diff(ids) > 0).all()

    def test_scan_partition_out_of_range(self, schema):
        from repro.errors import ExecutionError

        table = Table("t", schema, num_partitions=2)
        with pytest.raises(ExecutionError):
            list(table.scan_partition(5))


class TestScan:
    def test_scan_respects_vector_size(self, schema):
        table = Table("t", schema, block_size=64)
        fill(table, 200)
        sizes = [len(batch) for batch in table.scan(vector_size=50)]
        assert max(sizes) <= 50
        assert sum(sizes) == 200

    def test_scan_with_pruning_skips_blocks(self, schema):
        table = Table("t", schema, block_size=10)
        fill(table, 100)
        batches = list(table.scan(ranges=[ColumnRange("id", 95, None)]))
        total = sum(len(batch) for batch in batches)
        # Only the last block (ids 90..99) survives pruning.
        assert total == 10

    def test_pruning_never_loses_matching_rows(self, schema):
        table = Table("t", schema, block_size=7)
        fill(table, 100)
        batches = list(table.scan(ranges=[ColumnRange("id", 50, 60)]))
        ids = np.concatenate([batch.column("id") for batch in batches])
        assert set(range(50, 61)) <= set(ids.tolist())
