"""The pipeline-fusing query compiler (docs/COMPILE.md).

Covers the generated-source shape (golden tests), bit-exactness of the
compiled path against the interpreted path — including NaN edge cases,
disk-backed tables and all six ModelJoin execution variants — the
source-keyed kernel cache (hits, LRU eviction, invalidation on a model
table republish), and the resilience contract: injected kernel faults
fall back to interpreted execution once, repeated failures open the
compile circuit breaker, and cancellation propagates as a timeout.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.db import faults
from repro.db.compile import (
    CompiledKernelCache,
    KernelCompiler,
    KernelOutput,
    KernelSpec,
    NonCompilable,
    generate_expression_source,
    generate_kernel_source,
)
from repro.db.compile.codegen import SourceBuilder, emit
from repro.db.engine import Database
from repro.db.expressions import BinaryOp, Cast, ColumnRef, Literal
from repro.db.faults import FaultInjector
from repro.db.planner import PlannerOptions
from repro.db.resilience import CancellationToken
from repro.db.schema import Column, Schema
from repro.db.types import SqlType
from repro.bench.variants import BenchEnvironment, make_variant
from repro.core.registry import publish_model
from repro.errors import KernelExecutionError, QueryTimeoutError
from repro.workloads.models import make_dense_model


@pytest.fixture(autouse=True)
def no_leaked_injector():
    yield
    faults.uninstall()


def run_both(db: Database, sql: str, parallel: bool = False):
    """Execute *sql* compiled and interpreted; return both results."""
    saved = db.planner_options
    db.planner_options = dataclasses.replace(
        saved, use_compiled_kernels=True
    )
    compiled = db.execute(sql, parallel=parallel)
    db.planner_options = dataclasses.replace(
        saved, use_compiled_kernels=False
    )
    interpreted = db.execute(sql, parallel=parallel)
    db.planner_options = saved
    return compiled, interpreted


def assert_bit_exact(compiled, interpreted):
    assert compiled.schema.names == interpreted.schema.names
    assert compiled.row_count == interpreted.row_count
    for name in compiled.schema.names:
        left = compiled.column(name)
        right = interpreted.column(name)
        assert left.dtype == right.dtype, name
        if left.dtype == np.dtype(object):
            assert list(left) == list(right), name
        else:
            assert left.tobytes() == right.tobytes(), name


@pytest.fixture
def table_db(db: Database) -> Database:
    db.execute(
        "CREATE TABLE t (id INTEGER, grp INTEGER, a DOUBLE, b DOUBLE)"
    )
    rng = np.random.default_rng(3)
    n = 4000
    a = rng.normal(size=n)
    a[::17] = np.nan  # NaN edge cases flow through filters and SUMs
    db.table("t").append_columns(
        id=np.arange(n, dtype=np.int64),
        grp=rng.integers(0, 7, size=n),
        a=a,
        b=rng.normal(size=n),
    )
    return db


# ----------------------------------------------------------------------
# generated source (golden tests)
# ----------------------------------------------------------------------
GOLDEN_KERNEL = """\
# kernel: filter(1)+project(2)
k0 = np.dtype('float64').type(0.5)

def kernel(arrays, n, cancel):
    if cancel is not None:
        cancel.check()
    c0 = arrays[0]
    c1 = arrays[1]
    # filter 1/1: (a > 0.5)
    m = (c0 > k0)
    if not m.all():
        kept = np.count_nonzero(m)
        if kept == 0:
            return None
        sel = np.flatnonzero(m)
        n = kept
        c0 = c0[sel]
        c1 = c1[sel]
    # output x: (a * b)
    o0 = (c0 * c1)
    # output b: b
    o1 = (c1).astype(np.dtype('int64'), copy=False)
    return [o0, o1]
"""

GOLDEN_EXPR = """\
# expr: (a > 0.5)
k0 = np.dtype('float64').type(0.5)

def expr(arrays, n):
    c0 = arrays[0]
    return (c0 > k0)
"""


def two_column_schema() -> Schema:
    return Schema(
        (Column("a", SqlType.DOUBLE), Column("b", SqlType.INTEGER))
    )


class TestGeneratedSource:
    def predicate(self):
        return BinaryOp(">", ColumnRef("a"), Literal(0.5, SqlType.DOUBLE))

    def test_kernel_source_golden(self):
        spec = KernelSpec(
            schema=two_column_schema(),
            predicates=(self.predicate(),),
            outputs=(
                KernelOutput(
                    "x",
                    BinaryOp("*", ColumnRef("a"), ColumnRef("b")),
                    None,
                ),
                KernelOutput("b", ColumnRef("b"), np.dtype("int64")),
            ),
            transient=frozenset(),
            header=(),
            label="filter(1)+project(2)",
        )
        source, _bindings = generate_kernel_source(spec)
        assert source == GOLDEN_KERNEL

    def test_expression_source_golden(self):
        source, _bindings = generate_expression_source(
            self.predicate(), two_column_schema()
        )
        assert source == GOLDEN_EXPR

    def test_constants_are_deduplicated(self):
        half = Literal(0.5, SqlType.DOUBLE)
        expression = BinaryOp(
            "+",
            BinaryOp("*", ColumnRef("a"), half),
            BinaryOp("*", ColumnRef("b"), half),
        )
        source, _ = generate_expression_source(
            expression, two_column_schema()
        )
        assert source.count("np.dtype('float64').type(0.5)") == 1

    def test_varchar_cast_is_non_compilable(self):
        builder = SourceBuilder(two_column_schema())
        with pytest.raises(NonCompilable):
            emit(Cast(ColumnRef("a"), SqlType.VARCHAR), builder)

    def test_model_table_header_salts_the_source(self):
        spec = KernelSpec(
            schema=two_column_schema(),
            predicates=(),
            outputs=(KernelOutput("a", ColumnRef("a"), None),),
            transient=frozenset(),
            header=("# model-table: m uid=1 version=2",),
            label="project(1)",
        )
        source, _ = generate_kernel_source(spec)
        assert "# model-table: m uid=1 version=2" in source


# ----------------------------------------------------------------------
# bit-exactness vs the interpreted path
# ----------------------------------------------------------------------
class TestBitExactness:
    def test_expression_heavy_filter_project(self, table_db):
        compiled, interpreted = run_both(
            table_db,
            "SELECT id, a * b + 2.0 AS x, a / (b * b + 1.0) AS y "
            "FROM t WHERE a > 0.1 AND b < 1.5 AND id >= 10",
        )
        assert_bit_exact(compiled, interpreted)
        assert compiled.row_count > 0

    def test_fused_aggregate(self, table_db):
        compiled, interpreted = run_both(
            table_db,
            "SELECT grp, SUM(a * b) AS s, COUNT(*) AS c, MIN(b) AS lo "
            "FROM t WHERE b > -0.5 GROUP BY grp ORDER BY grp",
        )
        assert_bit_exact(compiled, interpreted)
        assert compiled.row_count == 7

    def test_nan_comparisons_filter_like_interpreted(self, table_db):
        # NaN > 0.1 is false; NaN <> NaN is true — both paths agree.
        compiled, interpreted = run_both(
            table_db, "SELECT id FROM t WHERE a > 0.1 ORDER BY id"
        )
        assert_bit_exact(compiled, interpreted)
        compiled, interpreted = run_both(
            table_db,
            "SELECT grp, COUNT(*) AS nan_rows FROM t WHERE a <> a "
            "GROUP BY grp ORDER BY grp",
        )
        assert_bit_exact(compiled, interpreted)
        assert compiled.column("nan_rows").sum() > 0

    def test_nan_propagates_through_sum(self, table_db):
        compiled, interpreted = run_both(
            table_db, "SELECT grp, SUM(a) AS s FROM t GROUP BY grp"
        )
        assert_bit_exact(compiled, interpreted)
        assert np.isnan(compiled.column("s")).all()

    def test_case_when_and_functions(self, table_db):
        compiled, interpreted = run_both(
            table_db,
            "SELECT id, CASE WHEN a > 0.0 THEN a ELSE 0.0 - a END AS m, "
            "ABS(b) AS ab FROM t WHERE id < 500",
        )
        assert_bit_exact(compiled, interpreted)

    def test_empty_selection(self, table_db):
        compiled, interpreted = run_both(
            table_db, "SELECT id, a FROM t WHERE id > 1000000"
        )
        assert_bit_exact(compiled, interpreted)
        assert compiled.row_count == 0

    def test_parallel_execution(self):
        db = Database(parallelism=4)
        db.execute(
            "CREATE TABLE p (id BIGINT, v DOUBLE) "
            "PARTITION BY (id) PARTITIONS 4"
        )
        rng = np.random.default_rng(5)
        db.table("p").append_columns(
            id=np.arange(8000, dtype=np.int64),
            v=rng.normal(size=8000),
        )
        compiled, interpreted = run_both(
            db,
            "SELECT id, v * v AS s FROM p WHERE v > -1.0 ORDER BY id",
            parallel=True,
        )
        assert_bit_exact(compiled, interpreted)
        db.close()

    def test_disk_backed_table(self, tmp_path):
        path = str(tmp_path / "db")
        db = repro.connect(path=path)
        db.execute(
            "CREATE TABLE d (id INTEGER, v DOUBLE) SORTED BY (id)"
        )
        rng = np.random.default_rng(9)
        db.table("d").append_columns(
            id=np.arange(6000, dtype=np.int64),
            v=rng.normal(size=6000),
        )
        db.close()
        reopened = repro.connect(path=path)
        assert reopened.table("d").disk_resident
        compiled, interpreted = run_both(
            reopened,
            "SELECT id, v * 2.0 AS w FROM d "
            "WHERE id >= 1000 AND id < 2000 AND v > 0.0",
        )
        assert_bit_exact(compiled, interpreted)
        assert "FusedPipeline" in reopened.explain(
            "SELECT id, v * 2.0 AS w FROM d WHERE id >= 1000"
        )
        reopened.close()

    @pytest.mark.parametrize(
        "legend",
        [
            "ModelJoin_CPU",
            "ModelJoin_GPU",
            "TF_CAPI_CPU",
            "TF_CPU",
            "UDF",
            "ML-To-SQL",
        ],
    )
    def test_all_modeljoin_variants_bit_exact(self, legend):
        predictions = {}
        for use_compiled in (True, False):
            db = repro.connect(
                planner_options=PlannerOptions(
                    use_compiled_kernels=use_compiled
                )
            )
            db.execute(
                "CREATE TABLE fact (id BIGINT, f0 FLOAT, f1 FLOAT, "
                "f2 FLOAT)"
            )
            rng = np.random.default_rng(21)
            db.table("fact").append_columns(
                id=np.arange(300, dtype=np.int64),
                f0=rng.random(300, dtype=np.float32),
                f1=rng.random(300, dtype=np.float32),
                f2=rng.random(300, dtype=np.float32),
            )
            model = make_dense_model(8, 2, input_width=3, seed=13)
            environment = BenchEnvironment(
                database=db,
                model=model,
                fact_table="fact",
                id_column="id",
                input_columns=["f0", "f1", "f2"],
                keep_predictions=True,
            )
            variant = make_variant(legend)
            variant.prepare(environment)
            predictions[use_compiled] = variant.run(
                environment
            ).predictions
            db.close()
        left, right = predictions[True], predictions[False]
        assert left is not None and right is not None
        np.testing.assert_array_equal(
            np.asarray(left), np.asarray(right)
        )


# ----------------------------------------------------------------------
# EXPLAIN and plan shape
# ----------------------------------------------------------------------
class TestExplain:
    def test_compiled_code_section(self, table_db):
        plan = table_db.explain(
            "SELECT id, a * b AS x FROM t WHERE a > 0.1"
        )
        assert "== Compiled Code ==" in plan
        assert "def kernel(arrays, n, cancel):" in plan
        assert "FusedPipeline" in plan

    def test_interpreted_plan_has_no_compiled_section(self, table_db):
        table_db.planner_options = dataclasses.replace(
            table_db.planner_options, use_compiled_kernels=False
        )
        plan = table_db.explain(
            "SELECT id, a * b AS x FROM t WHERE a > 0.1"
        )
        assert "== Compiled Code ==" not in plan
        assert "FusedPipeline" not in plan

    def test_varchar_output_falls_back_to_operators(self, db):
        db.execute("CREATE TABLE s (id INTEGER, v DOUBLE)")
        db.execute("INSERT INTO s VALUES (1, 1.5), (2, 2.5)")
        plan = db.explain(
            "SELECT CAST(id AS VARCHAR) AS label FROM s WHERE v > 0.0"
        )
        # str() conversion stays interpreted: no fused kernel for it
        assert "Project(" in plan
        compiled, interpreted = run_both(
            db, "SELECT CAST(id AS VARCHAR) AS label FROM s"
        )
        assert_bit_exact(compiled, interpreted)

    def test_epilogue_fusion_marks_modeljoin(self, cdb):
        cdb.execute(
            "CREATE TABLE f (id INTEGER, c0 FLOAT, c1 FLOAT, "
            "c2 FLOAT, c3 FLOAT)"
        )
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 4)).astype(np.float32)
        cdb.table("f").append_columns(
            id=np.arange(40),
            c0=x[:, 0],
            c1=x[:, 1],
            c2=x[:, 2],
            c3=x[:, 3],
        )
        model = make_dense_model(8, 2, input_width=4, seed=7)
        publish_model(cdb, "clf", model)
        sql = (
            "SELECT id, prediction_0 + 1.0 AS score FROM f "
            "MODEL JOIN clf USING (c0, c1, c2, c3)"
        )
        plan = cdb.explain(sql)
        assert "[epilogue: fused]" in plan
        assert "# model-table:" in plan
        compiled, interpreted = run_both(cdb, sql)
        assert_bit_exact(compiled, interpreted)


# ----------------------------------------------------------------------
# kernel cache
# ----------------------------------------------------------------------
class TestKernelCache:
    def test_repeat_query_hits_cache(self, table_db):
        sql = "SELECT id, a + b AS s FROM t WHERE a > 0.0"
        table_db.execute(sql)
        hits_before = table_db.metrics.counter("compile.cache_hit").value
        table_db.execute(sql)
        hits_after = table_db.metrics.counter("compile.cache_hit").value
        assert hits_after > hits_before
        assert len(table_db.kernel_cache) >= 1

    def test_lru_eviction(self):
        cache = CompiledKernelCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_model_republish_invalidates_epilogue_kernel(self, cdb):
        cdb.execute(
            "CREATE TABLE f (id INTEGER, c0 FLOAT, c1 FLOAT, "
            "c2 FLOAT, c3 FLOAT)"
        )
        rng = np.random.default_rng(4)
        x = rng.normal(size=(30, 4)).astype(np.float32)
        cdb.table("f").append_columns(
            id=np.arange(30),
            c0=x[:, 0],
            c1=x[:, 1],
            c2=x[:, 2],
            c3=x[:, 3],
        )
        publish_model(cdb, "clf", make_dense_model(8, 2, input_width=4, seed=1))
        sql = (
            "SELECT id, prediction_0 + 1.0 AS score FROM f "
            "MODEL JOIN clf USING (c0, c1, c2, c3)"
        )
        first = cdb.execute(sql)
        hits = cdb.metrics.counter("compile.cache_hit")
        warm_hits = hits.value
        cdb.execute(sql)
        assert hits.value > warm_hits  # warm repeat hits the cache
        # Republish: new model table identity -> new source header ->
        # the stale epilogue kernel cannot be reused.
        publish_model(
            cdb, "clf", make_dense_model(8, 2, input_width=4, seed=2),
            replace=True,
        )
        requests = cdb.metrics.counter("compile.requests").value
        hits_before = hits.value
        second = cdb.execute(sql)
        assert cdb.metrics.counter("compile.requests").value > requests
        # the epilogue kernel recompiled (a non-epilogue kernel of the
        # same statement may still hit, but not all of them can)
        missed = (
            cdb.metrics.counter("compile.requests").value - requests
        ) - (hits.value - hits_before)
        assert missed >= 1
        # new weights -> different scores (sanity that we re-ran truly)
        assert first.column("score").tobytes() != second.column(
            "score"
        ).tobytes()


# ----------------------------------------------------------------------
# resilience: faults, breaker, cancellation
# ----------------------------------------------------------------------
def compile_simple_kernel():
    schema = two_column_schema()
    spec = KernelSpec(
        schema=schema,
        predicates=(),
        outputs=(KernelOutput("a", ColumnRef("a"), None),),
        transient=frozenset(),
        header=(),
        label="project(1)",
    )
    kernel = KernelCompiler().compile_kernel(spec)
    assert kernel is not None
    return kernel


class TestResilience:
    def test_injected_fault_falls_back_to_interpreted(self, table_db):
        faults.install(FaultInjector(seed=1).raise_once("compile.kernel"))
        result = table_db.execute(
            "SELECT id, a * b AS x FROM t WHERE a > 0.1 ORDER BY id"
        )
        assert table_db.metrics.counter("compile.fallback").value == 1
        faults.uninstall()
        table_db.compile_breaker.record_success()
        reference = table_db.execute(
            "SELECT id, a * b AS x FROM t WHERE a > 0.1 ORDER BY id"
        )
        assert_bit_exact(result, reference)

    def test_repeated_faults_open_the_breaker(self, table_db):
        faults.install(
            FaultInjector(seed=1).raise_once("compile.kernel", count=100)
        )
        sql = "SELECT id, a + b AS s FROM t WHERE b > 0.0"
        for _ in range(3):
            table_db.execute(sql)
        assert table_db.metrics.counter("compile.fallback").value == 3
        assert table_db.compile_breaker.is_open
        # breaker open: the planner lowers interpreted, so the faulted
        # site is never reached and no further fallbacks happen
        table_db.execute(sql)
        assert table_db.metrics.counter("compile.fallback").value == 3
        assert "FusedPipeline" not in table_db.explain(sql)

    def test_kernel_wraps_runtime_errors(self):
        kernel = compile_simple_kernel()
        with pytest.raises(KernelExecutionError):
            kernel([], 4)  # no input arrays -> IndexError inside

    def test_cancellation_raises_timeout_through_kernel(self):
        kernel = compile_simple_kernel()
        token = CancellationToken.with_timeout(0.0)
        arrays = [np.arange(4, dtype=np.float64), np.arange(4)]
        with pytest.raises(QueryTimeoutError):
            kernel(arrays, 4, token)

    def test_compile_error_falls_back_to_interpreted_operator(self):
        # A spec that fails at exec time must compile to None (and the
        # lowering then uses the interpreted operators).
        broken = KernelSpec(
            schema=two_column_schema(),
            predicates=(),
            outputs=(KernelOutput("a", ColumnRef("a"), None),),
            transient=frozenset(),
            header=("this is not a comment -> SyntaxError",),
            label="project(1)",
        )
        compiler = KernelCompiler()
        assert compiler.compile_kernel(broken) is None
