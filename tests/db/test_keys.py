"""Key packing and range expansion (the join/aggregation kernel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.operators.keys import (
    pack_keys,
    pack_keys_slow,
    ranges_to_indices,
    supports_fast_keys,
)
from repro.errors import ExecutionError


class TestPackKeys:
    def test_single_int_column_passthrough(self):
        values = np.array([3, -1, 7], dtype=np.int64)
        packed = pack_keys([values])
        np.testing.assert_array_equal(packed, values)

    def test_multi_column_equality_semantics(self):
        a = np.array([1, 1, 2])
        b = np.array([5, 6, 5])
        packed = pack_keys([a, b])
        assert packed[0] != packed[1]
        assert packed[0] != packed[2]
        again = pack_keys([a.copy(), b.copy()])
        np.testing.assert_array_equal(packed == again, True)

    def test_float_zero_normalization(self):
        values = np.array([0.0, -0.0], dtype=np.float32)
        packed = pack_keys([values])
        assert packed[0] == packed[1]

    def test_bool_column(self):
        packed = pack_keys([np.array([True, False, True])])
        assert packed[0] == packed[2] != packed[1]

    def test_object_column_rejected_by_fast_path(self):
        strings = np.array(["a"], dtype=object)
        assert not supports_fast_keys([strings])
        with pytest.raises(ExecutionError):
            pack_keys([strings])

    def test_slow_path_tuples(self):
        packed = pack_keys_slow(
            [np.array(["x", "y"], dtype=object), np.array([1, 2])]
        )
        assert packed[0] == ("x", 1)

    def test_empty_key_list_rejected(self):
        with pytest.raises(ExecutionError):
            pack_keys([])

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.lists(
            st.tuples(
                st.integers(-100, 100),
                st.floats(
                    allow_nan=False, width=32, min_value=-10, max_value=10
                ),
            ),
            max_size=30,
        )
    )
    def test_packing_respects_tuple_equality(self, left):
        if not left:
            return
        ints = np.array([pair[0] for pair in left], dtype=np.int64)
        floats = np.array(
            [np.float32(pair[1]) for pair in left], dtype=np.float32
        )
        packed = pack_keys([ints, floats])
        for i in range(len(left)):
            for j in range(len(left)):
                same_value = (
                    ints[i] == ints[j] and floats[i] == floats[j]
                )
                assert (packed[i] == packed[j]) == same_value


class TestRangesToIndices:
    def test_basic_expansion(self):
        starts = np.array([10, 0, 5], dtype=np.int64)
        counts = np.array([2, 0, 3], dtype=np.int64)
        flat = ranges_to_indices(starts, counts)
        assert flat.tolist() == [10, 11, 5, 6, 7]

    def test_all_empty(self):
        flat = ranges_to_indices(
            np.array([1, 2], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
        )
        assert flat.tolist() == []

    @settings(max_examples=50, deadline=None)
    @given(
        ranges=st.lists(
            st.tuples(
                st.integers(0, 50),
                st.integers(0, 6),
            ),
            max_size=25,
        )
    )
    def test_matches_python_loops(self, ranges):
        starts = np.array([start for start, _ in ranges], dtype=np.int64)
        counts = np.array([count for _, count in ranges], dtype=np.int64)
        expected = [
            start + offset
            for start, count in ranges
            for offset in range(count)
        ]
        assert ranges_to_indices(starts, counts).tolist() == expected
