"""Catalog, profiler, and Result-object behaviour."""

import threading

import numpy as np
import pytest

from repro.db.catalog import Catalog, LayerMetadata, ModelMetadata
from repro.db.engine import Database, Result
from repro.db.profiler import MemoryAccountant, QueryProfile, Stopwatch
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import CatalogError, ExecutionError


def table(name="t"):
    return Table(name, Schema.of(("a", SqlType.INTEGER)))


class TestCatalog:
    def test_create_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table(table("MyTable"))
        assert catalog.has_table("mytable")
        assert catalog.table("MYTABLE").name == "MyTable"

    def test_duplicate_rejected_unless_replace(self):
        catalog = Catalog()
        catalog.create_table(table())
        with pytest.raises(CatalogError):
            catalog.create_table(table())
        catalog.create_table(table(), replace=True)

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("ghost")
        catalog.drop_table("ghost", if_exists=True)

    def test_model_requires_backing_table(self):
        catalog = Catalog()
        metadata = ModelMetadata(
            "m", "missing", 2, (LayerMetadata("dense", 1, "linear"),)
        )
        with pytest.raises(CatalogError, match="does not exist"):
            catalog.register_model(metadata)

    def test_model_registration_and_cascade(self):
        catalog = Catalog()
        catalog.create_table(table("weights"))
        metadata = ModelMetadata(
            "m", "weights", 2, (LayerMetadata("dense", 3, "relu"),)
        )
        catalog.register_model(metadata)
        assert catalog.model("M").output_width == 3
        catalog.drop_table("weights")
        assert not catalog.has_model("m")

    def test_duplicate_model_rejected(self):
        catalog = Catalog()
        catalog.create_table(table("weights"))
        metadata = ModelMetadata(
            "m", "weights", 2, (LayerMetadata("dense", 1, "linear"),)
        )
        catalog.register_model(metadata)
        with pytest.raises(CatalogError):
            catalog.register_model(metadata)
        catalog.register_model(metadata, replace=True)

    def test_layer_metadata_validation(self):
        with pytest.raises(CatalogError):
            LayerMetadata("conv", 3, "relu")
        with pytest.raises(CatalogError):
            LayerMetadata("dense", 0, "relu")


class TestMemoryAccountant:
    def test_peak_tracking(self):
        accountant = MemoryAccountant()
        accountant.allocate(100, "a")
        accountant.allocate(50, "b")
        accountant.release(100, "a")
        accountant.allocate(20, "b")
        assert accountant.peak_bytes == 150
        assert accountant.current_bytes == 70
        assert accountant.snapshot() == {"a": 0, "b": 70}

    def test_negative_rejected(self):
        accountant = MemoryAccountant()
        with pytest.raises(ValueError):
            accountant.allocate(-1)
        with pytest.raises(ValueError):
            accountant.release(-1)

    def test_reset(self):
        accountant = MemoryAccountant()
        accountant.allocate(10)
        accountant.reset()
        assert accountant.peak_bytes == 0
        assert accountant.snapshot() == {}

    def test_thread_safety(self):
        accountant = MemoryAccountant()

        def worker():
            for _ in range(1000):
                accountant.allocate(1)
                accountant.release(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert accountant.current_bytes == 0


class TestStopwatch:
    def test_measure_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("phase"):
            sum(range(1000))
        with stopwatch.measure("phase"):
            sum(range(1000))
        assert stopwatch.phases["phase"] > 0
        assert stopwatch.total() == pytest.approx(
            stopwatch.phases["phase"]
        )

    def test_profile_peak_property(self):
        profile = QueryProfile()
        profile.memory.allocate(42)
        assert profile.peak_memory_bytes == 42


class TestResult:
    @pytest.fixture
    def result(self, db: Database) -> Result:
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        return db.execute("SELECT a, b FROM t ORDER BY a")

    def test_rows_cached(self, result):
        assert result.rows is result.rows

    def test_row_count(self, result):
        assert result.row_count == 2

    def test_column_concat(self, result):
        assert result.column("a").tolist() == [1, 2]

    def test_column_concat_cached(self, result):
        assert result.column("a") is result.column("a")

    def test_column_cache_is_per_column(self, result):
        a = result.column("a")
        b = result.column("b")
        assert a is not b
        assert result.column("b") is b

    def test_column_unknown_name_rejected(self, result):
        from repro.errors import BindError

        with pytest.raises(BindError):
            result.column("missing")

    def test_column_of_empty_result(self, db):
        db.execute("CREATE TABLE e (a INTEGER)")
        result = db.execute("SELECT a FROM e")
        assert result.column("a").dtype == np.int64
        assert len(result.column("a")) == 0

    def test_to_dict(self, result):
        data = result.to_dict()
        assert set(data) == {"a", "b"}

    def test_scalar_requires_1x1(self, result):
        with pytest.raises(ExecutionError):
            result.scalar()

    def test_empty_factory(self):
        empty = Result.empty()
        assert empty.row_count == 0
        assert empty.rows == []
