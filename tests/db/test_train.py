"""Tests for in-database training and the model lifecycle.

Covers ``CREATE MODEL ... AS TRAIN`` end to end (convergence, scoring
parity with the NumPy reference, bit-for-bit seeded reproducibility),
the versioned model catalog (``AS RETRAIN``, ``ALTER MODEL ... SET
VERSION``, ``MODEL JOIN m VERSION k``, cache invalidation on swap),
atomic failure under the ``train.step`` fault site and a simulated
crash between weight-write and registration, persistence of the
version catalog across close/reopen, EXPLAIN for training statements,
retrain-and-swap under live serving traffic, and the SQL4NN-style
validation queries from docs/TRAINING.md.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import connect
from repro.db import faults
from repro.db.engine import Database
from repro.db.faults import FaultInjector
from repro.db.serve import Server
from repro.db.train import (
    TrainingSpec,
    version_table_name,
    weight_checksum,
)
from repro.db.train.executor import _build_model
from repro.db.train.operator import TrainOperator
from repro.errors import (
    CatalogError,
    InjectedFaultError,
    SqlSyntaxError,
    TrainingError,
)

ROWS = 192


def make_database(rows: int = ROWS, seed: int = 7, **kwargs) -> Database:
    """A database with a linearly separable two-feature dataset."""
    database = connect(**kwargs)
    database.execute(
        "CREATE TABLE pts (x1 DOUBLE, x2 DOUBLE, label DOUBLE)"
    )
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, 2)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.float32)
    database.catalog.table("pts").append_rows(
        [(float(a), float(b), float(l)) for (a, b), l in zip(x, y)]
    )
    return database


TRAIN_SQL = (
    "CREATE MODEL {name} {version} AS {mode} DENSE(8 relu, 1 sigmoid) "
    "ON (SELECT x1, x2, label FROM pts) "
    "WITH (epochs={epochs}, batch_size=32, lr=0.05, seed={seed}, "
    "loss='bce')"
)


def train_sql(
    name: str = "clf",
    mode: str = "TRAIN",
    epochs: int = 25,
    seed: int = 1,
    version: int | None = None,
) -> str:
    return TRAIN_SQL.format(
        name=name,
        mode=mode,
        epochs=epochs,
        seed=seed,
        version=f"VERSION {version}" if version is not None else "",
    )


def scores(database: Database, join: str = "clf") -> np.ndarray:
    result = database.execute(
        f"SELECT prediction_0 FROM pts MODEL JOIN {join} USING (x1, x2)"
    )
    return np.concatenate([batch.arrays[0] for batch in result.batches])


def labels_of(database: Database) -> np.ndarray:
    result = database.execute("SELECT label FROM pts")
    return np.concatenate(
        [batch.arrays[0] for batch in result.batches]
    ).astype(np.float32)


class TestCreateModelTraining:
    def test_trains_converges_and_reports_summary(self):
        database = make_database()
        result = database.execute(train_sql())
        (row,) = result.rows
        model, version, table_name, epochs, batches, loss, checksum = row
        assert model == "clf"
        assert version == 1
        assert table_name == "clf__v1"
        assert epochs == 25
        assert batches == 25 * ((ROWS + 31) // 32)
        assert loss < 0.2  # converged on the separable dataset
        assert checksum == f"{database.catalog.model_version('clf', 1).weight_checksum:08x}"
        predicted = (scores(database) > 0.5).astype(np.float32)
        accuracy = float((predicted == labels_of(database)).mean())
        assert accuracy > 0.95

    def test_scoring_parity_with_numpy_reference(self):
        """MODEL JOIN over the trained table must reproduce
        ``Sequential.predict`` of the same trained weights exactly
        (float64 cast is the only difference)."""
        database = make_database()
        database.execute(train_sql())

        # Retrain the identical model out-of-engine: same seed, same
        # spec, same data order (SELECT preserves insertion order).
        spec = TrainingSpec(
            epochs=25, batch_size=32, learning_rate=0.05, seed=1,
            loss="bce",
        )
        source = database.execute("SELECT x1, x2, label FROM pts")
        features = np.column_stack(
            [source.column("x1"), source.column("x2")]
        ).astype(np.float32)
        labels = np.asarray(
            source.column("label"), dtype=np.float32
        ).reshape(-1, 1)
        from repro.db.sql.ast import CreateModel, LayerSpec
        from repro.db.sql.parser import parse_statement

        statement = parse_statement(train_sql())
        assert isinstance(statement, CreateModel)
        assert statement.layers == (
            LayerSpec(8, "relu"), LayerSpec(1, "sigmoid"),
        )
        model = _build_model(statement, 2, spec.seed)
        TrainOperator(model, spec).run(features, labels)
        assert weight_checksum(model) == (
            database.catalog.model_version("clf", 1).weight_checksum
        )
        reference = model.predict(features).reshape(-1)
        joined = scores(database)
        np.testing.assert_array_equal(
            joined, reference.astype(np.float64)
        )

    def test_same_seed_is_bit_identical(self):
        database = make_database()
        database.execute(train_sql(name="a", seed=3))
        database.execute(train_sql(name="b", seed=3))
        record_a = database.catalog.model_version("a", 1)
        record_b = database.catalog.model_version("b", 1)
        assert record_a.weight_checksum == record_b.weight_checksum
        np.testing.assert_array_equal(
            scores(database, "a"), scores(database, "b")
        )

    def test_different_seed_differs(self):
        database = make_database()
        database.execute(train_sql(name="a", seed=3))
        database.execute(train_sql(name="b", seed=4))
        assert (
            database.catalog.model_version("a", 1).weight_checksum
            != database.catalog.model_version("b", 1).weight_checksum
        )

    def test_empty_source_fails(self):
        database = connect()
        database.execute("CREATE TABLE empty (a DOUBLE, b DOUBLE)")
        with pytest.raises(TrainingError, match="no rows"):
            database.execute(
                "CREATE MODEL m AS TRAIN DENSE(1 sigmoid) "
                "ON (SELECT a, b FROM empty) WITH (epochs=1)"
            )
        assert not database.catalog.has_model("m")

    def test_option_validation(self):
        database = make_database()
        base = (
            "CREATE MODEL m AS TRAIN DENSE(1 sigmoid) "
            "ON (SELECT x1, x2, label FROM pts) WITH ({options})"
        )
        for options, message in [
            ("epochs=0", "epochs"),
            ("lr=-1.0", "learning rate"),
            ("loss='hinge'", "loss"),
            ("wat=1", "unknown"),
            ("epochs=1, epochs=2", "duplicate"),
        ]:
            with pytest.raises(TrainingError, match=message):
                database.execute(base.format(options=options))

    def test_non_numeric_feature_fails(self):
        database = connect()
        database.execute("CREATE TABLE t (name VARCHAR, label DOUBLE)")
        database.catalog.table("t").append_rows([("x", 1.0)])
        with pytest.raises(TrainingError, match="not numeric"):
            database.execute(
                "CREATE MODEL m AS TRAIN DENSE(1 sigmoid) "
                "ON (SELECT name, label FROM t) WITH (epochs=1)"
            )

    def test_parse_errors(self):
        database = make_database()
        with pytest.raises(SqlSyntaxError):
            database.execute(
                "CREATE MODEL m AS TRAIN DENSE() "
                "ON (SELECT x1, label FROM pts)"
            )
        with pytest.raises(SqlSyntaxError):
            database.execute("ALTER MODEL m VERSION 2")


class TestModelLifecycle:
    def test_retrain_versions_and_swap(self):
        database = make_database()
        database.execute(train_sql(seed=1))
        assert database.catalog.current_version("clf") == 1

        database.execute(train_sql(mode="RETRAIN", seed=2, epochs=30))
        # RETRAIN publishes nothing: v2 exists but v1 stays current.
        assert database.catalog.latest_version("clf") == 2
        assert database.catalog.current_version("clf") == 1
        v1 = scores(database, "clf VERSION 1")
        v2 = scores(database, "clf VERSION 2")
        assert not np.array_equal(v1, v2)
        np.testing.assert_array_equal(scores(database), v1)

        database.execute("ALTER MODEL clf SET VERSION 2")
        assert database.catalog.current_version("clf") == 2
        np.testing.assert_array_equal(scores(database), v2)
        # The old version stays queryable, bit-exact.
        np.testing.assert_array_equal(
            scores(database, "clf VERSION 1"), v1
        )

    def test_alter_invalidates_bare_name_cache(self):
        database = make_database()
        database.execute(train_sql(seed=1))
        scores(database)  # caches the v1 build under table clf__v1
        database.execute(train_sql(mode="RETRAIN", seed=2))
        before = database.model_cache.statistics()["invalidations"]
        database.execute("ALTER MODEL clf SET VERSION 2")
        after = database.model_cache.statistics()["invalidations"]
        assert after > before

    def test_duplicate_and_missing_version_errors(self):
        database = make_database()
        database.execute(train_sql())
        with pytest.raises(TrainingError, match="already exists"):
            database.execute(train_sql())
        with pytest.raises(TrainingError, match="already has"):
            database.execute(
                train_sql(mode="RETRAIN", version=1)
            )
        with pytest.raises(TrainingError, match="cannot RETRAIN"):
            database.execute(train_sql(name="ghost", mode="RETRAIN"))
        with pytest.raises(CatalogError):
            database.execute("ALTER MODEL clf SET VERSION 9")
        with pytest.raises(CatalogError):
            database.execute(
                "SELECT prediction_0 FROM pts "
                "MODEL JOIN clf VERSION 9 USING (x1, x2)"
            )

    def test_drop_version_table_cleans_catalog(self):
        database = make_database()
        database.execute(train_sql())
        database.execute(train_sql(mode="RETRAIN", seed=2))
        database.catalog.drop_table(version_table_name("clf", 2))
        assert database.catalog.latest_version("clf") == 1
        # current version (1) survives the cascade
        assert database.catalog.current_version("clf") == 1

    def test_system_models_rows(self):
        database = make_database()
        database.execute(train_sql(seed=1))
        database.execute(train_sql(mode="RETRAIN", seed=2, epochs=30))
        rows = database.execute(
            "SELECT name, version, current, table_name, epochs, seed, "
            "loss, arch FROM system.models ORDER BY version"
        ).rows
        assert rows == [
            ("clf", 1, True, "clf__v1", 25, 1, "bce",
             "dense(8 relu, 1 sigmoid)"),
            ("clf", 2, False, "clf__v2", 30, 2, "bce",
             "dense(8 relu, 1 sigmoid)"),
        ]
        database.execute("ALTER MODEL clf SET VERSION 2")
        rows = database.execute(
            "SELECT version FROM system.models WHERE current"
        ).rows
        assert rows == [(2,)]


class TestFaultsAndAtomicity:
    def test_injected_step_fault_retries_bit_exact(self):
        reference = make_database()
        reference.execute(train_sql())
        expected = reference.catalog.model_version(
            "clf", 1
        ).weight_checksum

        database = make_database()
        injector = FaultInjector().raise_once("train.step", count=2)
        with faults.active(injector):
            database.execute(train_sql())
        assert injector.total_faults() == 2
        assert (
            database.catalog.model_version("clf", 1).weight_checksum
            == expected
        )
        snapshot = database.metrics.snapshot()
        assert snapshot["training.retries"]["value"] == 2

    def test_exhausted_retries_fail_atomically(self):
        database = make_database()
        injector = FaultInjector().raise_with_probability(
            "train.step", 1.0
        )
        with faults.active(injector):
            with pytest.raises(InjectedFaultError):
                database.execute(train_sql())
        assert not database.catalog.has_model("clf")
        assert "clf__v1" not in database.catalog.tables
        assert database.catalog.model_versions == {}
        # the name is free again: a clean retry trains fine
        database.execute(train_sql())
        assert database.catalog.current_version("clf") == 1

    def test_crash_between_weights_and_registration(self, monkeypatch):
        database = make_database()

        def boom(record, make_current=False):
            raise RuntimeError("simulated crash before registration")

        monkeypatch.setattr(
            database.catalog, "register_model_version", boom
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            database.execute(train_sql())
        monkeypatch.undo()
        # no orphan weight table, no catalog entry
        assert "clf__v1" not in database.catalog.tables
        assert not database.catalog.has_model("clf")
        database.execute(train_sql())
        assert database.catalog.current_version("clf") == 1

    def test_failed_create_lands_in_query_log(self):
        database = make_database()
        injector = FaultInjector().raise_with_probability(
            "train.step", 1.0
        )
        with faults.active(injector):
            with pytest.raises(InjectedFaultError):
                database.execute(train_sql())
        entries = database.query_log.entries()
        failed = [
            entry for entry in entries
            if entry["sql"].startswith("CREATE MODEL")
        ]
        assert failed and failed[-1]["status"] != "ok"


class TestPersistence:
    def test_version_catalog_roundtrip(self, tmp_path):
        database = make_database(path=str(tmp_path))
        database.execute(train_sql(seed=1))
        database.execute(train_sql(mode="RETRAIN", seed=2, epochs=30))
        database.execute("ALTER MODEL clf SET VERSION 2")
        v1 = scores(database, "clf VERSION 1")
        v2 = scores(database)
        record = database.catalog.model_version("clf", 2)
        database.close()

        reopened = connect(path=str(tmp_path))
        assert reopened.catalog.current_version("clf") == 2
        assert reopened.catalog.latest_version("clf") == 2
        restored = reopened.catalog.model_version("clf", 2)
        assert restored.weight_checksum == record.weight_checksum
        assert restored.seed == record.seed
        assert restored.source_fingerprint == record.source_fingerprint
        np.testing.assert_array_equal(
            scores(reopened, "clf VERSION 1"), v1
        )
        np.testing.assert_array_equal(scores(reopened), v2)
        rows = reopened.execute(
            "SELECT name, version, current FROM system.models "
            "ORDER BY version"
        ).rows
        assert rows == [("clf", 1, False), ("clf", 2, True)]
        reopened.close()

    def test_failed_training_leaves_clean_store(self, tmp_path):
        database = make_database(path=str(tmp_path))
        injector = FaultInjector().raise_with_probability(
            "train.step", 1.0
        )
        with faults.active(injector):
            with pytest.raises(InjectedFaultError):
                database.execute(train_sql())
        database.close()
        reopened = connect(path=str(tmp_path))
        assert not reopened.catalog.has_model("clf")
        assert reopened.catalog.model_versions == {}
        reopened.execute(train_sql())
        assert reopened.catalog.current_version("clf") == 1
        reopened.close()


class TestExplain:
    def test_explain_create_model(self):
        database = make_database()
        text = database.explain(train_sql())
        assert "CreateModel(name=clf, version=1, mode=train)" in text
        assert (
            "TrainOperator(arch=dense(8 relu, 1 sigmoid), epochs=25, "
            "batch_size=32, lr=0.05, momentum=0.9, seed=1, loss=bce)"
            in text
        )
        assert "== Physical Plan ==" in text
        assert "== Compiled Code ==" in text  # fused source kernels
        # EXPLAIN must not execute: nothing was trained
        assert not database.catalog.has_model("clf")

    def test_explain_retrain_and_alter(self):
        database = make_database()
        database.execute(train_sql())
        text = database.explain(train_sql(mode="RETRAIN", seed=2))
        assert "version=2, mode=retrain" in text
        assert database.explain("ALTER MODEL clf SET VERSION 1") == (
            "AlterModel(model=clf, set_version=1)"
        )


class TestServingAndSwap:
    def test_snapshot_pins_published_version(self):
        database = make_database()
        database.execute(train_sql(seed=1))
        database.execute(train_sql(mode="RETRAIN", seed=2))
        with database.snapshot() as snapshot:
            database.execute("ALTER MODEL clf SET VERSION 2")
            # the pinned catalog still resolves the capture-time version
            assert snapshot.catalog.current_version("clf") == 1
            assert (
                snapshot.catalog.model("clf").table_name == "clf__v1"
            )
        assert database.catalog.model("clf").table_name == "clf__v2"

    def test_retrain_and_swap_under_live_traffic(self):
        database = make_database()
        database.execute(train_sql(seed=1))
        v1 = scores(database)
        join_sql = (
            "SELECT prediction_0 FROM pts MODEL JOIN clf USING (x1, x2)"
        )
        errors: list[tuple] = []
        stop = threading.Event()
        swapped = threading.Event()
        with Server(
            database, queue_capacity=64, dispatchers=3
        ) as server:
            v2_holder: dict[str, np.ndarray] = {}

            def reader(index: int) -> None:
                with server.open_session(tenant=f"r{index}") as session:
                    while not stop.is_set():
                        result = session.execute(join_sql)
                        got = np.concatenate(
                            [b.arrays[0] for b in result.batches]
                        )
                        if np.array_equal(got, v1):
                            continue
                        v2 = v2_holder.get("v2")
                        if v2 is None or not np.array_equal(got, v2):
                            errors.append((index, got[:4]))
                            return
                        if swapped.is_set():
                            return  # saw the new version post-swap

            threads = [
                threading.Thread(target=reader, args=(i,))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            with server.open_session(tenant="trainer") as trainer:
                trainer.execute(
                    train_sql(mode="RETRAIN", seed=2, epochs=30)
                )
                v2_holder["v2"] = scores(database, "clf VERSION 2")
                trainer.execute("ALTER MODEL clf SET VERSION 2")
                swapped.set()
            # post-swap, new admissions must score v2
            with server.open_session(tenant="check") as session:
                result = session.execute(join_sql)
                got = np.concatenate(
                    [b.arrays[0] for b in result.batches]
                )
                assert np.array_equal(got, v2_holder["v2"])
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        database.close()


class TestSql4nnValidation:
    """The worked validation queries from docs/TRAINING.md."""

    def setup_method(self):
        self.database = make_database()
        self.database.execute(train_sql(seed=1))
        self.database.execute(
            train_sql(mode="RETRAIN", seed=2, epochs=30)
        )

    def test_weight_norm_audit(self):
        # hidden layer nodes are ids 2..9 (inputs 0..1), output id 10
        rows = self.database.execute(
            "SELECT node, SUM(ABS(w_i)) AS in_norm, MAX(ABS(b_i)) "
            "FROM clf__v1 WHERE node_in >= 0 "
            "GROUP BY node ORDER BY node"
        ).rows
        assert [row[0] for row in rows] == list(range(2, 11))
        assert all(row[1] > 0.0 for row in rows)

    def test_dead_relu_statistics(self):
        # a hidden ReLU unit is dead when no incoming weight can excite
        # it: every w_i <= 0 and bias <= 0
        rows = self.database.execute(
            "SELECT dead, COUNT(*) FROM ("
            "  SELECT node, MAX(w_i) <= 0.0 AND MAX(b_i) <= 0.0 AS dead"
            "  FROM clf__v1"
            "  WHERE node_in >= 0 AND node < 10"
            "  GROUP BY node"
            ") q GROUP BY dead ORDER BY dead"
        ).rows
        counts = dict(rows)
        assert counts.get(True, 0) < 8  # most units stay alive
        assert counts.get(False, 0) + counts.get(True, 0) == 8

    def diff_sql(self, left: str, right: str) -> str:
        return (
            "SELECT grp, MAX(delta) FROM ("
            "  SELECT 1 AS grp, ABS(a.w_i - b.w_i) AS delta"
            f"  FROM {left} a JOIN {right} b"
            "  ON a.node_in = b.node_in AND a.node = b.node"
            ") q GROUP BY grp"
        )

    def test_version_weight_diff(self):
        rows = self.database.execute(
            self.diff_sql("clf__v1", "clf__v2")
        ).rows
        assert rows[0][1] > 0.0  # different seeds → different weights
        rows = self.database.execute(
            self.diff_sql("clf__v1", "clf__v1")
        ).rows
        assert rows[0][1] == 0.0  # self-diff is exactly zero
