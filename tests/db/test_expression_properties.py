"""Property test: random expression trees vs a Python reference.

Hypothesis builds random arithmetic/comparison/CASE trees over two
columns; the engine's vectorized evaluation must match a row-at-a-time
Python interpretation of the same tree.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch

SCHEMA = Schema.of(("x", SqlType.DOUBLE), ("y", SqlType.DOUBLE))


@st.composite
def numeric_expression(draw, depth=0):
    if depth >= 3:
        return draw(
            st.sampled_from(
                [
                    ColumnRef("x"),
                    ColumnRef("y"),
                    Literal.of(2.0),
                    Literal.of(-0.5),
                    Literal.of(3),
                ]
            )
        )
    kind = draw(
        st.sampled_from(["leaf", "binary", "unary", "case", "function"])
    )
    if kind == "leaf":
        return draw(numeric_expression(depth=3))
    if kind == "binary":
        operator = draw(st.sampled_from(["+", "-", "*"]))
        return BinaryOp(
            operator,
            draw(numeric_expression(depth=depth + 1)),
            draw(numeric_expression(depth=depth + 1)),
        )
    if kind == "unary":
        return UnaryOp("-", draw(numeric_expression(depth=depth + 1)))
    if kind == "function":
        name = draw(st.sampled_from(["TANH", "SIGMOID", "ABS"]))
        return FunctionCall(
            name, (draw(numeric_expression(depth=depth + 1)),)
        )
    condition = BinaryOp(
        draw(st.sampled_from(["<", ">=", "="])),
        draw(numeric_expression(depth=depth + 1)),
        draw(numeric_expression(depth=depth + 1)),
    )
    return CaseWhen(
        ((condition, draw(numeric_expression(depth=depth + 1))),),
        draw(numeric_expression(depth=depth + 1)),
    )


def interpret(expression, x: float, y: float) -> float:
    """Row-at-a-time reference interpreter."""
    if isinstance(expression, ColumnRef):
        return {"x": x, "y": y}[expression.name]
    if isinstance(expression, Literal):
        return float(expression.value)
    if isinstance(expression, UnaryOp):
        return -interpret(expression.operand, x, y)
    if isinstance(expression, FunctionCall):
        value = interpret(expression.arguments[0], x, y)
        if expression.name == "TANH":
            return math.tanh(value)
        if expression.name == "SIGMOID":
            clipped = max(-80.0, min(80.0, value))
            return 1.0 / (1.0 + math.exp(-clipped))
        return abs(value)
    if isinstance(expression, CaseWhen):
        (condition, then_value), = expression.branches
        left = interpret(condition.left, x, y)
        right = interpret(condition.right, x, y)
        holds = {
            "<": left < right,
            ">=": left >= right,
            "=": left == right,
        }[condition.operator]
        if holds:
            return interpret(then_value, x, y)
        return interpret(expression.otherwise, x, y)
    if isinstance(expression, BinaryOp):
        left = interpret(expression.left, x, y)
        right = interpret(expression.right, x, y)
        return {
            "+": left + right,
            "-": left - right,
            "*": left * right,
        }[expression.operator]
    raise AssertionError(f"unhandled node {expression!r}")


@settings(max_examples=80, deadline=None)
@given(
    expression=numeric_expression(),
    xs=st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    ys=st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_vectorized_matches_interpreted(expression, xs, ys):
    rows = min(len(xs), len(ys))
    xs, ys = xs[:rows], ys[:rows]
    batch = VectorBatch.from_dict(
        SCHEMA, {"x": np.array(xs), "y": np.array(ys)}
    )
    vectorized = expression.evaluate(batch)
    expected = [interpret(expression, x, y) for x, y in zip(xs, ys)]
    np.testing.assert_allclose(
        np.asarray(vectorized, dtype=np.float64),
        expected,
        rtol=1e-6,
        atol=1e-9,
    )


@settings(max_examples=40, deadline=None)
@given(expression=numeric_expression())
def test_output_type_is_consistent_with_values(expression):
    batch = VectorBatch.from_dict(
        SCHEMA, {"x": np.array([0.5]), "y": np.array([-1.5])}
    )
    declared = expression.output_type(SCHEMA)
    values = expression.evaluate(batch)
    if declared.is_numeric:
        assert values.dtype.kind in "if"


@settings(max_examples=40, deadline=None)
@given(expression=numeric_expression())
def test_rendering_reparses_to_same_values(expression):
    """str(expr) must be valid SQL that evaluates identically."""
    from repro.db.sql.parser import parse_expression

    batch = VectorBatch.from_dict(
        SCHEMA, {"x": np.array([0.25, -2.0]), "y": np.array([1.0, 3.5])}
    )
    reparsed = parse_expression(str(expression))
    np.testing.assert_allclose(
        np.asarray(reparsed.evaluate(batch), dtype=np.float64),
        np.asarray(expression.evaluate(batch), dtype=np.float64),
        rtol=1e-6,
    )
