import pytest

from repro.db.schema import Column, Schema
from repro.db.types import SqlType
from repro.errors import BindError, DatabaseError


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        ("id", SqlType.INTEGER),
        ("value", SqlType.FLOAT),
        ("name", SqlType.VARCHAR),
    )


class TestSchemaBasics:
    def test_names_and_types(self, schema):
        assert schema.names == ("id", "value", "name")
        assert schema.types == (
            SqlType.INTEGER,
            SqlType.FLOAT,
            SqlType.VARCHAR,
        )

    def test_len_and_iter(self, schema):
        assert len(schema) == 3
        assert [column.name for column in schema] == ["id", "value", "name"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(DatabaseError):
            Schema.of(("a", SqlType.INTEGER), ("A", SqlType.FLOAT))

    def test_row_byte_width(self, schema):
        assert schema.row_byte_width() == 8 + 4 + 16


class TestLookup:
    def test_position_is_case_insensitive(self, schema):
        assert schema.position_of("ID") == 0
        assert schema.position_of("Value") == 1

    def test_missing_column_raises_bind_error(self, schema):
        with pytest.raises(BindError, match="nope"):
            schema.position_of("nope")

    def test_type_of(self, schema):
        assert schema.type_of("value") is SqlType.FLOAT

    def test_has_column(self, schema):
        assert schema.has_column("NAME")
        assert not schema.has_column("missing")


class TestDerivedSchemas:
    def test_concat(self, schema):
        other = Schema.of(("extra", SqlType.DOUBLE))
        combined = schema.concat(other)
        assert combined.names == ("id", "value", "name", "extra")

    def test_select_reorders(self, schema):
        selected = schema.select(["name", "id"])
        assert selected.names == ("name", "id")

    def test_rename_all(self, schema):
        renamed = schema.rename_all(["a", "b", "c"])
        assert renamed.names == ("a", "b", "c")
        assert renamed.types == schema.types

    def test_rename_wrong_arity(self, schema):
        with pytest.raises(DatabaseError):
            schema.rename_all(["a"])

    def test_column_renamed(self):
        column = Column("x", SqlType.FLOAT)
        assert column.renamed("y") == Column("y", SqlType.FLOAT)
