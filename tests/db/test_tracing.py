"""The query-trace subsystem: spans, metrics, export, overhead paths."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro
from repro.core.registry import publish_model
from repro.db.engine import Database
from repro.db.profiler import MemoryAccountant
from repro.db.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    flatten_metrics,
)
from repro.nn.layers import Dense
from repro.nn.model import Sequential


def _spans_by_name(tracer: Tracer) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for span in tracer.finished_spans():
        grouped.setdefault(span["name"], []).append(span)
    return grouped


class TestTracerCore:
    def test_span_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {span["name"]: span for span in tracer.finished_spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["id"]
        assert spans["outer"]["parent_id"] is None

    def test_span_intervals_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {span["name"]: span for span in tracer.finished_spans()}
        outer, inner = spans["outer"], spans["inner"]
        assert outer["start_us"] <= inner["start_us"]
        assert (
            inner["start_us"] + inner["duration_us"]
            <= outer["start_us"] + outer["duration_us"] + 1
        )

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        parent_id = tracer.allocate_id()
        with tracer.span("root"):
            with tracer.span("child", parent_id=parent_id):
                pass
        spans = {span["name"]: span for span in tracer.finished_spans()}
        assert spans["child"]["parent_id"] == parent_id

    def test_concurrent_threads_keep_separate_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(index: int) -> None:
            barrier.wait()
            for _ in range(50):
                with tracer.span(f"outer-{index}"):
                    with tracer.span(f"inner-{index}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        grouped = _spans_by_name(tracer)
        for index in range(4):
            outers = {
                span["id"] for span in grouped[f"outer-{index}"]
            }
            inners = grouped[f"inner-{index}"]
            assert len(inners) == 50
            # Every inner span parents under one of ITS thread's outer
            # spans — never under another thread's.
            for span in inners:
                assert span["parent_id"] in outers

    def test_max_events_drops_and_counts(self):
        tracer = Tracer(max_events=10)
        for index in range(50):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished_spans()) <= 10
        assert tracer.dropped_events >= 40
        trace = tracer.chrome_trace()
        assert trace["otherData"]["dropped_events"] >= 40

    def test_clear_resets(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.finished_spans() == []


class TestDisabledTracer:
    def test_disabled_span_is_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN

    def test_null_tracer_cannot_be_enabled(self):
        NULL_TRACER.enabled = True
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.finished_spans() == []

    def test_default_context_pays_no_operator_timing(self, db: Database):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0), (2.0)")
        db.execute("SELECT a FROM t")
        # Disabled tracer → the fast next_batches path (no timing).
        assert db.tracer.enabled is False
        assert db.tracer.finished_spans() == []


class TestHistogram:
    def test_exact_stats(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0
        assert histogram.max == 4.0

    def test_nearest_rank_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(50.0) == 50.0
        assert histogram.percentile(95.0) == 95.0
        assert histogram.percentile(99.0) == 99.0
        assert histogram.percentile(100.0) == 100.0

    def test_percentile_bounds_validated(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_reservoir_decimation_keeps_percentiles_sane(self):
        histogram = Histogram(max_samples=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        # Exact extremes survive decimation...
        assert histogram.min == 0.0
        assert histogram.max == 9_999.0
        # ...and the sampled median stays in the right neighbourhood.
        assert 3_000.0 <= histogram.percentile(50.0) <= 7_000.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(50.0) == 0.0


class TestMetricsRegistry:
    def test_get_or_create_and_type_conflicts(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("a")
        assert metrics.counter("a") is counter
        with pytest.raises(ValueError):
            metrics.gauge("a")
        with pytest.raises(ValueError):
            metrics.histogram("a")

    def test_snapshot_and_flatten(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").increment(3)
        metrics.gauge("ratio").set(0.75)
        metrics.histogram("lat").observe(1.0)
        metrics.histogram("lat").observe(3.0)
        flat = flatten_metrics(metrics.snapshot())
        assert flat["hits"] == 3
        assert flat["ratio"] == 0.75
        assert flat["lat.count"] == 2
        assert flat["lat.mean"] == pytest.approx(2.0)
        assert "lat.p95" in flat

    def test_contains_and_reset(self):
        metrics = MetricsRegistry()
        metrics.counter("x")
        assert "x" in metrics
        metrics.reset()
        assert "x" not in metrics


class TestChromeTraceExport:
    def test_export_is_perfetto_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query", category="query"):
            with tracer.span("work", category="operator"):
                pass
        path = tmp_path / "trace.json"
        count = tracer.export(str(path))
        assert count >= 2
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        complete = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(
                event
            )
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Thread-name metadata events for the Perfetto track labels.
        metadata = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "M"
        ]
        assert any(
            event["name"] == "thread_name" for event in metadata
        )

    def test_golden_event_shape(self, tmp_path):
        """The stable export contract, pinned field by field."""
        tracer = Tracer()
        with tracer.span(
            "morsel", category="morsel", args={"rows": 17}
        ):
            pass
        event = [
            entry
            for entry in tracer.chrome_trace()["traceEvents"]
            if entry.get("ph") == "X"
        ][0]
        assert event["name"] == "morsel"
        assert event["cat"] == "morsel"
        assert event["args"]["rows"] == 17
        assert isinstance(event["args"]["span_id"], int)
        assert event["tid"] > 0


class TestEngineTracing:
    def test_export_trace_via_database(self, tmp_path, db: Database):
        db.enable_tracing()
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)")
        db.execute("SELECT a FROM t WHERE a > 1.5")
        path = tmp_path / "query_trace.json"
        count = db.export_trace(str(path))
        assert count > 0
        document = json.loads(path.read_text())
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        }
        assert "query" in names
        assert "TableScan" in names  # operator span

    def test_operator_spans_parent_chain(self, db: Database):
        db.enable_tracing()
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0), (2.0)")
        db.execute("SELECT a FROM t WHERE a > 0")
        spans = {
            span["name"]: span for span in db.tracer.finished_spans()
        }
        query = spans["query"]
        scan = spans["TableScan"]
        # Walking parents from the scan must reach the query span.
        by_id = {
            span["id"]: span for span in db.tracer.finished_spans()
        }
        node = scan
        seen = set()
        while node["parent_id"] is not None:
            assert node["id"] not in seen
            seen.add(node["id"])
            node = by_id[node["parent_id"]]
        assert node["id"] == query["id"]

    def test_parallel_spans_under_concurrent_worker_pool(self):
        database = repro.connect(parallelism=4)
        database.enable_tracing()
        database.execute(
            "CREATE TABLE f (id INTEGER, a FLOAT) "
            "PARTITION BY (id) PARTITIONS 4"
        )
        n = 8192
        database.table("f").append_columns(
            id=np.arange(n),
            a=np.random.default_rng(1).random(n).astype(np.float32),
        )
        result = database.execute(
            "SELECT id, a FROM f WHERE a >= 0.0", parallel=True
        )
        assert result.row_count == n
        spans = database.tracer.finished_spans()
        grouped: dict[str, list[dict]] = {}
        for span in spans:
            grouped.setdefault(span["name"], []).append(span)
        query = grouped["query"][0]
        pipelines = grouped["pipeline"]
        assert len(pipelines) == 4
        # Cross-thread edge: every pipeline parents under the query.
        for pipeline in pipelines:
            assert pipeline["parent_id"] == query["id"]
        # Pipelines actually ran on distinct worker threads.
        assert len({span["thread"] for span in pipelines}) > 1
        # Morsel spans parent under their pipeline's scan operator.
        scans = {span["id"] for span in grouped["TableScan"]}
        assert grouped["morsel"]
        for morsel in grouped["morsel"]:
            assert morsel["parent_id"] in scans
            assert "worker" in morsel["args"]
        database.close()

    def test_modeljoin_trace_has_all_levels(self, tmp_path):
        database = repro.connect(parallelism=4)
        database.enable_tracing()
        database.execute(
            "CREATE TABLE facts (id INTEGER, a FLOAT, b FLOAT, "
            "c FLOAT, d FLOAT) PARTITION BY (id) PARTITIONS 4"
        )
        rng = np.random.default_rng(0)
        n = 4096
        database.table("facts").append_columns(
            id=np.arange(n),
            a=rng.random(n).astype(np.float32),
            b=rng.random(n).astype(np.float32),
            c=rng.random(n).astype(np.float32),
            d=rng.random(n).astype(np.float32),
        )
        model = Sequential(
            [Dense(8, "relu"), Dense(1, "sigmoid")],
            input_width=4,
            seed=5,
        )
        publish_model(database, "m", model)
        result = database.execute(
            "SELECT id, prediction_0 FROM facts MODEL JOIN m "
            "USING (a, b, c, d)",
            parallel=True,
        )
        assert result.row_count == n
        path = tmp_path / "mj_trace.json"
        database.export_trace(str(path))
        document = json.loads(path.read_text())
        events = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        categories = {event["cat"] for event in events}
        names = {event["name"] for event in events}
        assert {
            "query",
            "parallel",
            "operator",
            "phase",
            "morsel",
            "kernel",
        } <= categories
        assert "modeljoin-build" in names
        assert "modeljoin-infer" in names
        assert "gemm" in names
        metrics = flatten_metrics(database.metrics.snapshot())
        assert metrics["query.latency.count"] >= 1
        assert metrics["modeljoin.build_seconds.count"] >= 1
        database.close()

    def test_query_latency_metrics_accumulate(self, db: Database):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0)")
        for _ in range(3):
            db.execute("SELECT a FROM t")
        snapshot = db.metrics.snapshot()
        assert snapshot["query.latency"]["count"] >= 3
        assert snapshot["query.count"]["value"] >= 3


class TestExplainAnalyze:
    def test_serial_shows_time_and_batches(self, db: Database):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)")
        plan, result = db.explain_analyze("SELECT a FROM t WHERE a > 1")
        assert result.row_count == 2
        assert "[rows: 2]" in plan
        assert "[batches:" in plan
        assert "[time:" in plan

    def test_parallel_merges_partition_stats(self):
        database = repro.connect(parallelism=4)
        database.execute(
            "CREATE TABLE f (id INTEGER, a FLOAT) "
            "PARTITION BY (id) PARTITIONS 4"
        )
        n = 4000
        database.table("f").append_columns(
            id=np.arange(n),
            a=np.linspace(0.0, 1.0, n).astype(np.float32),
        )
        plan, result = database.explain_analyze(
            "SELECT id, a FROM f", parallel=True
        )
        assert result.row_count == n
        assert "Parallel: 4 pipelines" in plan
        # The merged scan line carries the query-global row count, not
        # one partition's quarter share (the zeros of the old output).
        scan_line = next(
            line for line in plan.splitlines() if "TableScan" in line
        )
        assert f"[rows: {n}]" in scan_line
        assert "[time:" in scan_line
        database.close()

    def test_parallel_with_coordinator_operators(self):
        database = repro.connect(parallelism=2)
        database.execute(
            "CREATE TABLE f (id INTEGER, a FLOAT) "
            "PARTITION BY (id) PARTITIONS 2"
        )
        n = 1000
        database.table("f").append_columns(
            id=np.arange(n),
            a=np.linspace(0.0, 1.0, n).astype(np.float32),
        )
        plan, result = database.explain_analyze(
            "SELECT id, a FROM f ORDER BY id LIMIT 5", parallel=True
        )
        assert result.row_count == 5
        assert "coordinator (post-merge):" in plan
        assert "Limit" in plan
        database.close()


class TestMemoryUnderflow:
    def test_release_clamps_at_zero(self):
        accountant = MemoryAccountant()
        accountant.allocate(100, "model")
        accountant.release(150, "model")
        assert accountant.current_bytes == 0
        assert accountant.by_category["model"] == 0
        assert accountant.underflows == 1

    def test_double_release_counts_each_underflow(self):
        accountant = MemoryAccountant()
        accountant.allocate(10)
        accountant.release(10)
        accountant.release(10)
        accountant.release(10)
        assert accountant.underflows == 2
        assert accountant.current_bytes == 0

    def test_underflow_does_not_deflate_peak(self):
        accountant = MemoryAccountant()
        accountant.allocate(100)
        accountant.release(500)
        accountant.allocate(100)
        assert accountant.peak_bytes == 100
        assert accountant.current_bytes == 100

    def test_reset_clears_underflows(self):
        accountant = MemoryAccountant()
        accountant.allocate(1)
        accountant.release(2)
        accountant.reset()
        assert accountant.underflows == 0

    def test_underflow_surfaces_in_profile_and_metrics(self):
        from repro.db.profiler import QueryProfile, finalize_profile

        profile = QueryProfile()
        profile.memory.allocate(10, "x")
        profile.memory.release(20, "x")
        metrics = MetricsRegistry()
        finalize_profile(profile, metrics)
        assert profile.counters.get("memory.release_underflow") == 1
        assert metrics.counter("memory.release_underflow").value == 1


class TestTracingOverheadGate:
    def test_smoke_overhead_and_evidence(self, tmp_path):
        """The bench assertion of the issue, on the smoke workload.

        The timing arm is allowed a generous margin here (CI runners
        are noisy); the strict 5% verdict is recorded by
        ``python -m repro.bench tracing`` into BENCH_pr2.json.
        """
        from repro.bench.tracing_bench import (
            run_overhead_gate,
            run_trace_evidence,
        )

        overhead = run_overhead_gate(
            rows=1_000, width=8, depth=2, repeats=2
        )
        assert overhead["disabled_median_seconds"] > 0
        assert overhead["enabled_median_seconds"] > 0
        evidence = run_trace_evidence(
            str(tmp_path / "evidence.json"),
            rows=1_000,
            width=8,
            depth=2,
            parallelism=2,
        )
        assert evidence["trace"]["ok"], evidence["trace"]["missing_levels"]
        assert evidence["metrics"]["query.latency.count"] >= 1
