"""Randomized query fuzzing against a Python reference executor.

Hypothesis generates small relational workloads (a fact table plus a
dimension table) and random SELECTs over them — filters, a join, a
grouped aggregation — and the engine's results are compared against a
straightforward row-at-a-time Python evaluation.  This complements the
targeted operator tests with breadth.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database


@st.composite
def workload(draw):
    rows = draw(st.integers(min_value=0, max_value=60))
    fact = [
        (
            i,
            draw(st.integers(min_value=0, max_value=4)),  # k
            draw(
                st.floats(
                    min_value=-50, max_value=50, allow_nan=False, width=32
                )
            ),
        )
        for i in range(rows)
    ]
    dim_keys = draw(
        st.sets(st.integers(min_value=0, max_value=4), max_size=5)
    )
    dim = [
        (key, draw(st.integers(min_value=-3, max_value=3)))
        for key in sorted(dim_keys)
    ]
    threshold = draw(st.integers(min_value=-40, max_value=40))
    return fact, dim, threshold


def build_database(fact, dim) -> Database:
    db = Database()
    db.execute("CREATE TABLE fact (id INTEGER, k INTEGER, v FLOAT)")
    db.execute("CREATE TABLE dim (k INTEGER, w INTEGER)")
    if fact:
        db.table("fact").append_rows(
            [(i, k, float(np.float32(v))) for i, k, v in fact]
        )
    if dim:
        db.table("dim").append_rows(dim)
    return db


class TestFilterFuzz:
    @settings(max_examples=30, deadline=None)
    @given(data=workload())
    def test_filter_projection(self, data):
        fact, dim, threshold = data
        db = build_database(fact, dim)
        result = db.execute(
            f"SELECT id, v * 2 AS dbl FROM fact WHERE v > {threshold} "
            "ORDER BY id"
        )
        expected = sorted(
            (i, float(np.float32(v) * np.float32(2)))
            for i, _, v in fact
            if np.float32(v) > threshold
        )
        assert len(result.rows) == len(expected)
        for got, want in zip(result.rows, expected):
            assert got[0] == want[0]
            np.testing.assert_allclose(got[1], want[1], rtol=1e-5)


class TestJoinFuzz:
    @settings(max_examples=30, deadline=None)
    @given(data=workload())
    def test_join_matches_nested_loops(self, data):
        fact, dim, _ = data
        db = build_database(fact, dim)
        result = db.execute(
            "SELECT fact.id, dim.w FROM fact, dim WHERE fact.k = dim.k"
        )
        expected = sorted(
            (i, w) for i, k, _ in fact for dk, w in dim if k == dk
        )
        assert sorted(result.rows) == expected


class TestAggregationFuzz:
    @settings(max_examples=30, deadline=None)
    @given(data=workload())
    def test_group_by_matches_reference(self, data):
        fact, dim, _ = data
        db = build_database(fact, dim)
        result = db.execute(
            "SELECT k, COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi "
            "FROM fact GROUP BY k ORDER BY k"
        )
        reference: dict = {}
        for _, k, v in fact:
            v32 = float(np.float32(v))
            count, lo, hi = reference.get(k, (0, np.inf, -np.inf))
            reference[k] = (count + 1, min(lo, v32), max(hi, v32))
        assert len(result.rows) == len(reference)
        for k, c, lo, hi in result.rows:
            want = reference[k]
            assert c == want[0]
            np.testing.assert_allclose(lo, want[1], rtol=1e-6)
            np.testing.assert_allclose(hi, want[2], rtol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(data=workload())
    def test_join_then_aggregate(self, data):
        fact, dim, _ = data
        db = build_database(fact, dim)
        result = db.execute(
            "SELECT dim.w AS w, COUNT(*) AS c FROM fact, dim "
            "WHERE fact.k = dim.k GROUP BY dim.w ORDER BY w"
        )
        reference: dict = {}
        for _, k, _v in fact:
            for dk, w in dim:
                if k == dk:
                    reference[w] = reference.get(w, 0) + 1
        assert sorted(result.rows) == sorted(reference.items())


class TestLimitsAndDistinctFuzz:
    @settings(max_examples=20, deadline=None)
    @given(data=workload(), limit=st.integers(0, 10))
    def test_limit_prefix_of_order(self, data, limit):
        fact, dim, _ = data
        db = build_database(fact, dim)
        full = db.execute("SELECT id FROM fact ORDER BY id").rows
        limited = db.execute(
            f"SELECT id FROM fact ORDER BY id LIMIT {limit}"
        ).rows
        assert limited == full[:limit]

    @settings(max_examples=20, deadline=None)
    @given(data=workload())
    def test_distinct_is_set(self, data):
        fact, dim, _ = data
        db = build_database(fact, dim)
        result = db.execute("SELECT DISTINCT k FROM fact")
        assert sorted(row[0] for row in result.rows) == sorted(
            {k for _, k, _ in fact}
        )
