"""Unit tests of the physical operators, driven directly (no SQL)."""

import numpy as np
import pytest

from repro.db.expressions import BinaryOp, ColumnRef, Literal
from repro.db.operators import (
    CrossJoin,
    ExecutionContext,
    FilterOperator,
    HashJoin,
    LimitOperator,
    ProjectOperator,
    SortOperator,
    TableScan,
    UnionAll,
    ValuesOperator,
)
from repro.db.operators.misc import RenameOperator
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import ExecutionError


@pytest.fixture
def context() -> ExecutionContext:
    return ExecutionContext(vector_size=32)


def make_table(name, rows, sort_key=(), num_partitions=1):
    schema = Schema.of(("id", SqlType.INTEGER), ("v", SqlType.FLOAT))
    table = Table(
        name,
        schema,
        sort_key=sort_key,
        num_partitions=num_partitions,
        block_size=16,
    )
    ids = np.arange(rows, dtype=np.int64)
    table.append_columns(id=ids, v=ids.astype(np.float32) * 0.5)
    return table


def collect(operator):
    return [row for batch in operator.batches() for row in batch.to_rows()]


class TestScanAndLifecycle:
    def test_scan_all_rows(self, context):
        scan = TableScan(context, make_table("t", 100))
        assert len(collect(scan)) == 100

    def test_double_open_rejected(self, context):
        scan = TableScan(context, make_table("t", 5))
        scan.open()
        with pytest.raises(ExecutionError):
            scan.open()

    def test_scan_ordering_property(self, context):
        sorted_table = make_table("t", 10, sort_key=("id",))
        assert TableScan(context, sorted_table).ordering == ("id",)
        multi = make_table("m", 10, sort_key=("id",), num_partitions=2)
        assert TableScan(context, multi).ordering == ()
        assert TableScan(context, multi, partition_index=1).ordering == (
            "id",
        )

    def test_scan_counts_pruned_blocks(self, context):
        from repro.db.column import ColumnRange

        scan = TableScan(
            context,
            make_table("t", 100),
            ranges=[ColumnRange("id", 90, None)],
        )
        list(scan.batches())
        assert scan.blocks_pruned > 0


class TestFilterProject:
    def test_filter_keeps_matching(self, context):
        scan = TableScan(context, make_table("t", 50))
        predicate = BinaryOp("<", ColumnRef("id"), Literal.of(5))
        rows = collect(FilterOperator(context, scan, predicate))
        assert [row[0] for row in rows] == [0, 1, 2, 3, 4]

    def test_filter_rejects_non_boolean(self, context):
        scan = TableScan(context, make_table("t", 5))
        operator = FilterOperator(context, scan, ColumnRef("id"))
        with pytest.raises(ExecutionError):
            collect(operator)

    def test_filter_preserves_ordering(self, context):
        scan = TableScan(context, make_table("t", 5, sort_key=("id",)))
        predicate = BinaryOp(">", ColumnRef("id"), Literal.of(1))
        assert FilterOperator(context, scan, predicate).ordering == ("id",)

    def test_project_computes_and_names(self, context):
        scan = TableScan(context, make_table("t", 3))
        project = ProjectOperator(
            context,
            scan,
            [BinaryOp("*", ColumnRef("v"), Literal.of(2)), ColumnRef("id")],
            ["double_v", "key"],
        )
        assert project.schema.names == ("double_v", "key")
        assert collect(project)[2] == (2.0, 2)

    def test_project_ordering_through_rename(self, context):
        scan = TableScan(context, make_table("t", 3, sort_key=("id",)))
        project = ProjectOperator(
            context, scan, [ColumnRef("id")], ["renamed"]
        )
        assert project.ordering == ("renamed",)

    def test_project_ordering_breaks_on_computed_key(self, context):
        scan = TableScan(context, make_table("t", 3, sort_key=("id",)))
        project = ProjectOperator(
            context,
            scan,
            [BinaryOp("+", ColumnRef("id"), Literal.of(1))],
            ["idplus"],
        )
        assert project.ordering == ()

    def test_rename_operator(self, context):
        scan = TableScan(context, make_table("t", 3, sort_key=("id",)))
        rename = RenameOperator(context, scan, ["t.id", "t.v"])
        assert rename.schema.names == ("t.id", "t.v")
        assert rename.ordering == ("t.id",)


class TestJoins:
    def test_hash_join_inner(self, context):
        left = TableScan(context, make_table("l", 10))
        right = ValuesOperator(
            context,
            Schema.of(("key", SqlType.INTEGER), ("w", SqlType.FLOAT)),
            [(2, 10.0), (2, 20.0), (5, 50.0), (99, 0.0)],
        )
        join = HashJoin(
            context, left, right, [ColumnRef("id")], [ColumnRef("key")]
        )
        rows = collect(join)
        assert sorted(rows) == [
            (2, 1.0, 2, 10.0),
            (2, 1.0, 2, 20.0),
            (5, 2.5, 5, 50.0),
        ]

    def test_hash_join_preserves_probe_order(self, context):
        left = TableScan(context, make_table("l", 20, sort_key=("id",)))
        right = ValuesOperator(
            context,
            Schema.of(("key", SqlType.INTEGER),),
            [(i,) for i in range(20)],
        )
        join = HashJoin(
            context, left, right, [ColumnRef("id")], [ColumnRef("key")]
        )
        ids = [row[0] for row in collect(join)]
        assert ids == sorted(ids)
        assert join.ordering == ("id",)

    def test_hash_join_multi_key(self, context):
        schema = Schema.of(("a", SqlType.INTEGER), ("b", SqlType.INTEGER))
        left = ValuesOperator(context, schema, [(1, 1), (1, 2), (2, 1)])
        right = ValuesOperator(
            context,
            Schema.of(("c", SqlType.INTEGER), ("d", SqlType.INTEGER)),
            [(1, 2), (2, 1), (2, 2)],
        )
        join = HashJoin(
            context,
            left,
            right,
            [ColumnRef("a"), ColumnRef("b")],
            [ColumnRef("c"), ColumnRef("d")],
        )
        assert sorted(collect(join)) == [(1, 2, 1, 2), (2, 1, 2, 1)]

    def test_hash_join_residual(self, context):
        left = ValuesOperator(
            context,
            Schema.of(("a", SqlType.INTEGER), ("x", SqlType.INTEGER)),
            [(1, 5), (1, 0)],
        )
        right = ValuesOperator(
            context,
            Schema.of(("b", SqlType.INTEGER), ("y", SqlType.INTEGER)),
            [(1, 3)],
        )
        join = HashJoin(
            context,
            left,
            right,
            [ColumnRef("a")],
            [ColumnRef("b")],
            residual=BinaryOp(">", ColumnRef("x"), ColumnRef("y")),
        )
        assert collect(join) == [(1, 5, 1, 3)]

    def test_hash_join_memory_released(self, context):
        join = HashJoin(
            context,
            RenameOperator(
                context, TableScan(context, make_table("l2", 10)), ["lid", "lv"]
            ),
            TableScan(context, make_table("r2", 10)),
            [ColumnRef("lid")],
            [ColumnRef("id")],
        )
        rows = collect(join)
        assert len(rows) == 10
        assert context.memory.current_bytes == 0
        assert context.memory.peak_bytes > 0

    def test_string_keys_slow_path(self, context):
        left = ValuesOperator(
            context,
            Schema.of(("s", SqlType.VARCHAR),),
            [("a",), ("b",), ("c",)],
        )
        right = ValuesOperator(
            context,
            Schema.of(("t", SqlType.VARCHAR), ("n", SqlType.INTEGER)),
            [("b", 2), ("c", 3)],
        )
        join = HashJoin(
            context, left, right, [ColumnRef("s")], [ColumnRef("t")]
        )
        assert sorted(collect(join)) == [("b", "b", 2), ("c", "c", 3)]

    def test_cross_join(self, context):
        left = ValuesOperator(
            context, Schema.of(("a", SqlType.INTEGER),), [(1,), (2,)]
        )
        right = ValuesOperator(
            context, Schema.of(("b", SqlType.INTEGER),), [(10,), (20,)]
        )
        rows = collect(CrossJoin(context, left, right))
        assert rows == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_cross_join_ordering_extends(self, context):
        left = TableScan(context, make_table("l", 4, sort_key=("id",)))
        right = ValuesOperator(
            context, Schema.of(("b", SqlType.INTEGER),), [(1,)]
        )
        join = CrossJoin(context, left, right)
        assert join.ordering == ("id",)

    def test_cross_join_empty_right(self, context):
        left = TableScan(context, make_table("l", 4))
        right = ValuesOperator(
            context, Schema.of(("b", SqlType.INTEGER),), []
        )
        assert collect(CrossJoin(context, left, right)) == []


class TestSortLimitUnion:
    def test_sort_ascending(self, context):
        values = ValuesOperator(
            context,
            Schema.of(("a", SqlType.INTEGER),),
            [(3,), (1,), (2,)],
        )
        rows = collect(SortOperator(context, values, [ColumnRef("a")]))
        assert rows == [(1,), (2,), (3,)]

    def test_sort_descending(self, context):
        values = ValuesOperator(
            context,
            Schema.of(("a", SqlType.INTEGER),),
            [(3,), (1,), (2,)],
        )
        rows = collect(
            SortOperator(context, values, [ColumnRef("a")], [False])
        )
        assert rows == [(3,), (2,), (1,)]

    def test_sort_multi_key(self, context):
        schema = Schema.of(("a", SqlType.INTEGER), ("b", SqlType.INTEGER))
        values = ValuesOperator(
            context, schema, [(1, 2), (0, 9), (1, 1)]
        )
        rows = collect(
            SortOperator(
                context, values, [ColumnRef("a"), ColumnRef("b")]
            )
        )
        assert rows == [(0, 9), (1, 1), (1, 2)]

    def test_limit_offset(self, context):
        scan = TableScan(context, make_table("t", 100))
        rows = collect(LimitOperator(context, scan, 3, offset=10))
        assert [row[0] for row in rows] == [10, 11, 12]

    def test_limit_zero(self, context):
        scan = TableScan(context, make_table("t", 10))
        assert collect(LimitOperator(context, scan, 0)) == []

    def test_union_all(self, context):
        one = ValuesOperator(
            context, Schema.of(("a", SqlType.INTEGER),), [(1,)]
        )
        two = ValuesOperator(
            context, Schema.of(("b", SqlType.INTEGER),), [(2,)]
        )
        rows = collect(UnionAll(context, [one, two]))
        assert rows == [(1,), (2,)]

    def test_union_type_mismatch(self, context):
        one = ValuesOperator(
            context, Schema.of(("a", SqlType.INTEGER),), [(1,)]
        )
        two = ValuesOperator(
            context, Schema.of(("b", SqlType.VARCHAR),), [("x",)]
        )
        with pytest.raises(ExecutionError):
            UnionAll(context, [one, two])

    def test_explain_tree(self, context):
        scan = TableScan(context, make_table("t", 5))
        plan = LimitOperator(context, scan, 1)
        text = plan.explain()
        assert "Limit" in text and "TableScan" in text
