"""Multiprocess sharded execution: routing, merging, chaos, reopen.

One sharded engine (2 worker processes) and one single-process
reference engine are loaded with identical data; every query class is
asserted bit-exact across the two.  Chaos and persistence tests spawn
their own fleets.
"""

import time

import numpy as np
import pytest

import repro
from repro.db.shard.tables import ShardedTable
from repro.db.vector import VectorBatch
from repro.errors import ShardCrashError, ShardError
from repro.nn.layers import Dense
from repro.nn.model import Sequential

ROWS = 1200


def _load(db):
    db.execute(
        "CREATE TABLE events (k INTEGER, g INTEGER, v DOUBLE) "
        "PARTITION BY (k)"
    )
    db.execute("CREATE TABLE dims (g INTEGER, w DOUBLE)")
    rng = np.random.default_rng(42)
    table = db.table("events")
    table.append_batch(
        VectorBatch.from_dict(
            table.schema,
            {
                "k": rng.integers(0, 40, ROWS).astype(np.int64),
                "g": rng.integers(0, 7, ROWS).astype(np.int64),
                # multiples of 1/8: float folds exact in any order
                "v": (
                    rng.integers(-400, 400, ROWS).astype(np.float64) / 8.0
                ),
            },
        )
    )
    dims = db.table("dims")
    dims.append_batch(
        VectorBatch.from_dict(
            dims.schema,
            {
                "g": np.arange(7, dtype=np.int64),
                "w": np.arange(7, dtype=np.float64) / 4.0,
            },
        )
    )
    return db


@pytest.fixture(scope="module")
def fleet():
    sharded = _load(repro.connect(shards=2))
    reference = _load(repro.connect())
    yield sharded, reference
    sharded.close()
    reference.close()


def both(fleet, sql):
    sharded, reference = fleet
    left = sharded.execute(sql)
    right = reference.execute(sql)
    assert tuple(left.schema.names) == tuple(right.schema.names)
    return left.rows, right.rows


class TestBitExactQueries:
    def test_scan_filter_projection(self, fleet):
        got, want = both(
            fleet,
            "SELECT k, v FROM events WHERE v > 10 ORDER BY k, v",
        )
        assert got == want

    def test_disjoint_groupby_is_bit_exact(self, fleet):
        # GROUP BY includes the partition key: shard results are final
        got, want = both(
            fleet,
            "SELECT k, SUM(v) AS s, AVG(v) AS a FROM events "
            "GROUP BY k ORDER BY k",
        )
        assert got == want

    def test_decomposed_groupby(self, fleet):
        # groups span shards: partial decomposition + coordinator merge
        got, want = both(
            fleet,
            "SELECT g, SUM(v) AS s, COUNT(v) AS c, AVG(v) AS a, "
            "MIN(v) AS lo, MAX(v) AS hi FROM events GROUP BY g "
            "ORDER BY g",
        )
        assert got == want

    def test_having_after_merge(self, fleet):
        got, want = both(
            fleet,
            "SELECT g, SUM(v) AS s FROM events GROUP BY g "
            "HAVING COUNT(v) > 100 ORDER BY g",
        )
        assert got == want

    def test_distinct_order_limit(self, fleet):
        got, want = both(
            fleet,
            "SELECT DISTINCT g FROM events ORDER BY g LIMIT 4",
        )
        assert got == want

    def test_join_with_replicated_dimension(self, fleet):
        got, want = both(
            fleet,
            "SELECT events.g, SUM(dims.w) AS t FROM events "
            "JOIN dims ON events.g = dims.g GROUP BY events.g "
            "ORDER BY g",
        )
        assert got == want

    def test_replica_cache_resyncs_after_update(self, fleet):
        sharded, reference = fleet
        sql = (
            "SELECT events.g, COUNT(dims.w) AS c FROM events "
            "JOIN dims ON events.g = dims.g GROUP BY events.g "
            "ORDER BY g LIMIT 1"
        )
        first = sharded.execute(sql).rows
        assert first == reference.execute(sql).rows
        for db in (sharded, reference):
            db.execute("INSERT INTO dims VALUES (99, 0.5)")
        # version bump must invalidate the shipped replica copies
        assert sharded.execute(sql).rows == reference.execute(sql).rows


class TestModelJoin:
    def test_modeljoin_broadcast_is_bit_exact(self):
        from repro.core.registry import publish_model

        model = Sequential(
            [Dense(5, "relu"), Dense(1, "sigmoid")],
            input_width=3,
            seed=7,
        )
        results = []
        for shards in (2, 0):
            db = repro.connect(shards=shards)
            db.execute(
                "CREATE TABLE feats (id INTEGER, x1 FLOAT, x2 FLOAT, "
                "x3 FLOAT) PARTITION BY (id)"
            )
            rng = np.random.default_rng(3)
            table = db.table("feats")
            table.append_batch(
                VectorBatch.from_dict(
                    table.schema,
                    {
                        "id": np.arange(300, dtype=np.int64),
                        "x1": rng.random(300, dtype=np.float32),
                        "x2": rng.random(300, dtype=np.float32),
                        "x3": rng.random(300, dtype=np.float32),
                    },
                )
            )
            publish_model(db, "clf", model)
            results.append(
                db.execute(
                    "SELECT id, prediction_0 FROM feats MODEL JOIN clf "
                    "ORDER BY id"
                ).rows
            )
            db.close()
        assert results[0] == results[1]


class TestTopologyAndObservability:
    def test_default_is_single_process(self):
        db = repro.connect()
        assert db.sharding is None
        assert db.metrics.gauge("shard.count").value == 0
        db.close()

    def test_invalid_shard_configuration(self):
        with pytest.raises(ValueError):
            repro.connect(shards=-1)
        with pytest.raises(ValueError):
            repro.connect(shards=2, shard_workers=0)

    def test_topology_gauges_and_prometheus(self, fleet):
        sharded, _ = fleet
        assert sharded.metrics.gauge("shard.count").value == 2
        assert sharded.metrics.gauge("worker.pool_size").value == 1
        text = sharded.export_metrics_text()
        assert "repro_shard_count 2" in text
        assert "repro_worker_pool_size 1" in text

    def test_system_shards(self, fleet):
        sharded, _ = fleet
        rows = sharded.execute(
            "SELECT shard_id, alive, rows, rows_read FROM system.shards "
            "ORDER BY shard_id"
        ).rows
        assert [row[0] for row in rows] == [0, 1]
        assert all(row[1] for row in rows)
        assert sum(row[2] for row in rows) >= ROWS
        assert all(row[3] > 0 for row in rows)

    def test_per_shard_counters_in_profile(self, fleet):
        sharded, _ = fleet
        sharded.execute("SELECT k, v FROM events WHERE v > 0")
        counters = sharded.last_profile.counters.snapshot()
        assert counters.get("scan.rows_read.shard-0", 0) > 0
        assert counters.get("scan.rows_read.shard-1", 0) > 0

    def test_explain_shows_fragment_tree(self, fleet):
        sharded, _ = fleet
        text = sharded.explain(
            "SELECT g, SUM(v) AS s FROM events GROUP BY g"
        )
        assert "GatherExchange" in text
        assert "Fragment" in text
        assert "MergeAggregate" in text

    def test_coordinator_scan_of_sharded_table_raises(self, fleet):
        sharded, _ = fleet
        table = sharded.table("events")
        assert isinstance(table, ShardedTable)
        with pytest.raises(ShardError):
            list(table.scan())

    def test_system_tables_cannot_mix_with_sharded(self, fleet):
        sharded, _ = fleet
        with pytest.raises(ShardError):
            sharded.execute(
                "SELECT events.k FROM events "
                "JOIN system.tables s ON events.k = s.version"
            )


class TestChaosAndLifecycle:
    def test_killed_shard_raises_typed_error_not_hang(self):
        db = repro.connect(shards=2)
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        db.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        db.sharding.kill_shard(1)
        started = time.perf_counter()
        with pytest.raises(ShardCrashError):
            db.execute("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert time.perf_counter() - started < 10.0
        # degraded but responsive: fails fast, not differently
        with pytest.raises(ShardCrashError):
            db.execute("SELECT k, v FROM t")
        # a dead shard still renders (alive=false) in system.shards
        rows = db.execute(
            "SELECT shard_id, alive FROM system.shards ORDER BY shard_id"
        ).rows
        assert rows[1][1] is np.False_ or rows[1][1] == False  # noqa: E712
        started = time.perf_counter()
        db.close(drain_seconds=2.0)
        assert time.perf_counter() - started < 8.0

    def test_close_is_idempotent_and_bounded(self):
        db = repro.connect(shards=2)
        started = time.perf_counter()
        db.close(drain_seconds=2.0)
        db.close(drain_seconds=2.0)
        assert time.perf_counter() - started < 8.0
        for handle in db.sharding.handles:
            assert not handle.process.is_alive()

    def test_drop_table_broadcasts(self):
        db = repro.connect(shards=2)
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        db.execute("INSERT INTO t VALUES (1, 1.0)")
        db.execute("DROP TABLE t")
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        assert db.execute("SELECT k FROM t").row_count == 0
        db.close()

    def test_worker_error_propagates_with_taxonomy(self):
        db = repro.connect(shards=2)
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        db.execute("INSERT INTO t VALUES (1, 1.0)")
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.execute("SELECT nope FROM t")
        # the fleet stays healthy after a worker-side error
        assert db.execute("SELECT k FROM t").row_count == 1
        db.close()


class TestPersistence:
    def test_reopen_restores_sharded_tables(self, tmp_path):
        path = str(tmp_path / "db")
        db = repro.connect(shards=2, path=path)
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        db.execute(
            "INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)"
        )
        before = db.execute("SELECT k, v FROM t ORDER BY k").rows
        db.close()

        db = repro.connect(shards=2, path=path)
        assert isinstance(db.table("t"), ShardedTable)
        assert db.execute("SELECT k, v FROM t ORDER BY k").rows == before
        # appends keep routing after reopen
        db.execute("INSERT INTO t VALUES (5, 5.0)")
        assert db.execute("SELECT k FROM t").row_count == 5
        db.close()

    def test_reopen_with_wrong_shard_count_raises(self, tmp_path):
        from repro.errors import CatalogError

        path = str(tmp_path / "db")
        db = repro.connect(shards=2, path=path)
        db.execute(
            "CREATE TABLE t (k INTEGER, v DOUBLE) PARTITION BY (k)"
        )
        db.close()
        with pytest.raises(CatalogError):
            repro.connect(shards=3, path=path)
