import numpy as np
import pytest

from repro.db.column import (
    Block,
    BlockBuilder,
    ColumnRange,
    MinMax,
)
from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch


@pytest.fixture
def schema() -> Schema:
    return Schema.of(("k", SqlType.INTEGER), ("v", SqlType.FLOAT))


def make_batch(schema, keys):
    keys = np.asarray(keys, dtype=np.int64)
    return VectorBatch.from_dict(
        schema, {"k": keys, "v": keys.astype(np.float32) / 2}
    )


class TestMinMax:
    def test_overlapping_range(self):
        stat = MinMax(5.0, 10.0)
        assert stat.may_contain_range(7, 8)
        assert stat.may_contain_range(None, 5)
        assert stat.may_contain_range(10, None)

    def test_disjoint_ranges(self):
        stat = MinMax(5.0, 10.0)
        assert not stat.may_contain_range(11, None)
        assert not stat.may_contain_range(None, 4)


class TestColumnRange:
    def test_intersect(self):
        merged = ColumnRange("x", 1, 10).intersect(ColumnRange("x", 5, None))
        assert (merged.low, merged.high) == (5, 10)

    def test_intersect_different_columns_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            ColumnRange("x", 1, 2).intersect(ColumnRange("y", 1, 2))


class TestBlock:
    def test_stats_computed_for_numeric(self, schema):
        block = Block(
            schema, [np.array([3, 1, 2]), np.zeros(3, dtype=np.float32)]
        )
        assert block.stats[0] == MinMax(1.0, 3.0)

    def test_may_match_uses_stats(self, schema):
        block = Block(
            schema,
            [np.array([10, 20]), np.zeros(2, dtype=np.float32)],
        )
        assert block.may_match(schema, [ColumnRange("k", 15, 25)])
        assert not block.may_match(schema, [ColumnRange("k", 21, None)])

    def test_may_match_ignores_unknown_columns(self, schema):
        block = Block(
            schema, [np.array([1]), np.zeros(1, dtype=np.float32)]
        )
        assert block.may_match(schema, [ColumnRange("zzz", 5, 6)])

    def test_varchar_has_no_stats(self):
        schema = Schema.of(("s", SqlType.VARCHAR))
        block = Block(schema, [np.array(["a", "b"], dtype=object)])
        assert block.stats == [None]


class TestBlockBuilder:
    def test_seals_full_blocks(self, schema):
        builder = BlockBuilder(schema, block_size=4)
        builder.append(make_batch(schema, range(10)))
        blocks = builder.all_blocks()
        assert [block.length for block in blocks] == [4, 4, 2]
        assert builder.row_count == 10

    def test_appends_accumulate_across_calls(self, schema):
        builder = BlockBuilder(schema, block_size=4)
        for start in range(0, 6, 2):
            builder.append(make_batch(schema, range(start, start + 2)))
        blocks = builder.all_blocks()
        assert [block.length for block in blocks] == [4, 2]
        first = blocks[0].arrays[0].tolist()
        assert first == [0, 1, 2, 3]

    def test_empty_append_ignored(self, schema):
        builder = BlockBuilder(schema, block_size=4)
        builder.append(make_batch(schema, []))
        assert builder.all_blocks() == []

    def test_stats_per_block(self, schema):
        builder = BlockBuilder(schema, block_size=3)
        builder.append(make_batch(schema, [5, 1, 9, 100, 50, 60]))
        blocks = builder.all_blocks()
        assert blocks[0].stats[0] == MinMax(1.0, 9.0)
        assert blocks[1].stats[0] == MinMax(50.0, 100.0)


class TestBlockBuilderConcurrency:
    def test_concurrent_first_scan_seals_once(self, schema):
        """Regression: broadcast tables are scanned by all partition
        pipelines at once; racing flushes must seal the pending block
        exactly once (this used to pop from an empty list)."""
        import threading

        from repro.db.table import Table

        for _ in range(20):
            table = Table("t", schema, block_size=1 << 20)
            table.append_columns(
                k=np.arange(1000, dtype=np.int64),
                v=np.zeros(1000, dtype=np.float32),
            )
            counts = []
            errors = []

            def scan():
                try:
                    counts.append(
                        sum(len(batch) for batch in table.scan())
                    )
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=scan) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert counts == [1000] * 4
