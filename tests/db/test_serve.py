"""Tests for the concurrent serving layer (repro.db.serve).

Covers the admission queue's deterministic shedding and fair dispatch,
session lifecycle (close cancels in-flight queries), close-under-load,
snapshot isolation with generation pinning/GC, the wire protocol, the
serving system tables and metrics, and a chaos variant driven through
the ``REPRO_FAULTS`` spec grammar.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.db import faults
from repro.db.engine import Database
from repro.db.introspect import parse_prometheus_text
from repro.db.resilience import CancellationToken
from repro.db.serve import (
    AdmissionQueue,
    AdmittedQuery,
    Server,
    WireClient,
    WireServer,
)
from repro.db.udf import PythonUdf
from repro.errors import (
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
    SessionClosedError,
    SqlSyntaxError,
)

EVENT_ROWS = 120


def make_database(**kwargs) -> Database:
    database = Database(**kwargs)
    database.execute(
        "CREATE TABLE events (id INTEGER, grp INTEGER, val DOUBLE)"
    )
    database.execute(
        "INSERT INTO events VALUES "
        + ", ".join(
            f"({i}, {i % 4}, {i * 0.5})" for i in range(EVENT_ROWS)
        )
    )
    return database


def olap(group: int) -> str:
    return (
        "SELECT grp, COUNT(*), SUM(val) FROM events "
        f"WHERE grp = {group} GROUP BY grp"
    )


class _StubSession:
    """Just enough session surface for direct AdmissionQueue tests."""

    def __init__(self, tenant="default", priority=0, session_id="stub"):
        self.tenant = tenant
        self.priority = priority
        self.session_id = session_id

    def _query_done(self, entry):
        pass


def make_entry(priority=0, tenant="default", deadline=None):
    session = _StubSession(tenant=tenant, priority=priority)
    token = (
        CancellationToken.with_timeout(deadline)
        if deadline is not None
        else CancellationToken()
    )
    return AdmittedQuery("SELECT 1", session, token)


class TestAdmissionQueue:
    def test_shed_lowest_priority_first(self):
        queue = AdmissionQueue(capacity=2)
        low = make_entry(priority=1)
        high = make_entry(priority=9)
        assert queue.admit(low) == []
        assert queue.admit(high) == []
        shed = queue.admit(make_entry(priority=5))
        assert shed == [low]

    def test_shed_closest_deadline_among_equal_priority(self):
        queue = AdmissionQueue(capacity=2)
        relaxed = make_entry(priority=3, deadline=60.0)
        urgent = make_entry(priority=3, deadline=0.5)
        queue.admit(relaxed)
        queue.admit(urgent)
        shed = queue.admit(make_entry(priority=3, deadline=30.0))
        assert shed == [urgent]

    def test_new_entry_itself_shed_raises(self):
        queue = AdmissionQueue(capacity=1)
        queue.admit(make_entry(priority=9))
        with pytest.raises(QueryRejectedError, match="queue is full"):
            queue.admit(make_entry(priority=1))
        assert len(queue) == 1  # the incumbent survived

    def test_take_prefers_idle_tenant_then_priority(self):
        queue = AdmissionQueue(capacity=8)
        busy_high = make_entry(priority=9, tenant="busy")
        idle_low = make_entry(priority=1, tenant="idle")
        idle_high = make_entry(priority=5, tenant="idle")
        for entry in (busy_high, idle_low, idle_high):
            queue.admit(entry)
        # tenant fairness dominates raw priority...
        assert queue.take({"busy": 2}) is idle_high
        # ...and priority breaks ties within a tenant
        assert queue.take({"busy": 2}) is idle_low
        assert queue.take({"busy": 2}) is busy_high

    def test_close_returns_pending_and_rejects_admission(self):
        queue = AdmissionQueue(capacity=4)
        entry = make_entry()
        queue.admit(entry)
        assert queue.close() == [entry]
        with pytest.raises(QueryRejectedError, match="closed"):
            queue.admit(make_entry())
        assert queue.take({}) is None


class TestServing:
    def test_concurrent_sessions_bit_exact(self):
        database = make_database(parallelism=2)
        references = {
            group: database.execute(olap(group)).rows
            for group in range(4)
        }
        errors = []
        with Server(database, queue_capacity=32, dispatchers=3) as server:

            def client(index):
                with server.open_session(tenant=f"t{index % 2}") as s:
                    for turn in range(6):
                        group = (index + turn) % 4
                        rows = s.execute(olap(group)).rows
                        if rows != references[group]:
                            errors.append((index, group, rows))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        database.close()

    def test_overload_sheds_and_nothing_hangs(self):
        database = make_database()
        with Server(database, queue_capacity=2, dispatchers=1) as server:
            session = server.open_session(timeout_seconds=30.0)
            futures, rejected = [], 0
            for index in range(40):
                try:
                    futures.append(session.submit(olap(index % 4)))
                except QueryRejectedError:
                    rejected += 1
            completed = 0
            for future in futures:
                try:
                    future.wait(timeout=30.0)
                    completed += 1
                except QueryRejectedError:
                    rejected += 1
            assert completed + rejected == 40
            assert completed > 0
            assert rejected > 0
        database.close()

    def test_terminal_statuses_land_in_query_log(self):
        database = make_database()
        gate = threading.Event()

        def hold(values):
            gate.wait(10.0)
            return values

        database.register_udf(
            PythonUdf("hold_a", 1, hold, marshal=False)
        )
        server = Server(database, queue_capacity=2, dispatchers=1)
        blocker = server.open_session()
        low = server.open_session(priority=1)
        high = server.open_session(priority=5)
        running = blocker.submit(
            "SELECT id, hold_a(val) FROM events WHERE grp = 0"
        )
        time.sleep(0.1)  # let the dispatcher pick it up
        queued = high.submit(olap(1))
        expired = high.submit(olap(3), timeout_seconds=0.001)
        with pytest.raises(QueryRejectedError):
            low.submit(olap(2)).wait(5.0)  # lowest priority -> shed
        time.sleep(0.05)  # let the expiring entry's deadline pass
        gate.set()
        running.wait(10.0)
        queued.wait(10.0)
        with pytest.raises(QueryTimeoutError):
            expired.wait(10.0)
        statuses = {
            entry["status"] for entry in database.query_log.entries()
        }
        assert {"ok", "rejected", "timeout"} <= statuses
        rejected_rows = [
            entry
            for entry in database.query_log.entries()
            if entry["status"] == "rejected"
        ]
        assert rejected_rows[0]["error_class"] == "QueryRejectedError"
        assert rejected_rows[0]["session_id"] == low.session_id
        server.close()
        database.close()

    def test_session_close_cancels_in_flight(self):
        database = make_database()
        gate = threading.Event()

        def hold(values):
            gate.wait(10.0)
            return values

        database.register_udf(
            PythonUdf("hold_b", 1, hold, marshal=False)
        )
        with Server(database, queue_capacity=4, dispatchers=1) as server:
            session = server.open_session()
            future = session.submit(
                "SELECT id, hold_b(val) FROM events WHERE grp = 0"
            )
            time.sleep(0.1)
            session.close()
            gate.set()
            with pytest.raises(QueryCancelledError, match="session closed"):
                future.wait(10.0)
            with pytest.raises(SessionClosedError):
                session.execute(olap(0))
            log_statuses = [
                entry["status"]
                for entry in database.query_log.entries()
            ]
            assert "cancelled" in log_statuses
        database.close()

    def test_deadline_inheritance(self):
        database = make_database()
        with Server(
            database, default_timeout_seconds=12.0
        ) as server:
            session = server.open_session()
            future = session.submit(olap(0))
            remaining = future.token.remaining_seconds()
            assert remaining is not None and 0 < remaining <= 12.0
            future.wait(10.0)
            # per-query override beats the session default
            override = session.submit(olap(1), timeout_seconds=60.0)
            assert override.token.remaining_seconds() > 12.0
            override.wait(10.0)
        database.close()

    def test_database_close_under_load(self):
        """Regression: close() must drain, not assume an idle caller."""
        database = make_database()
        gate = threading.Event()

        def hold(values):
            gate.wait(10.0)
            return values

        database.register_udf(
            PythonUdf("hold_c", 1, hold, marshal=False)
        )
        server = Server(database, queue_capacity=8, dispatchers=2)
        session = server.open_session()
        future = session.submit(
            "SELECT id, hold_c(val) FROM events WHERE grp = 0"
        )
        time.sleep(0.1)
        closed = threading.Event()

        def closer():
            database.close(drain_seconds=0.5)
            closed.set()

        thread = threading.Thread(target=closer)
        thread.start()
        # close() cancels the in-flight token, the UDF is still blocked
        # on the gate, and the bounded drain lets close() return anyway.
        assert closed.wait(10.0), "close() hung on an in-flight query"
        gate.set()
        thread.join()
        with pytest.raises(
            (QueryCancelledError, QueryTimeoutError)
        ):
            future.wait(10.0)
        with pytest.raises((QueryRejectedError, SessionClosedError)):
            session.execute(olap(0))


class TestSnapshotIsolation:
    def test_pinned_generation_survives_until_unpinned(self, tmp_path):
        database = make_database(path=str(tmp_path))
        database.checkpoint()
        table_dir = tmp_path / "tables" / "events"
        first = {p.name for p in table_dir.iterdir()}
        snapshot = database.snapshot()
        database.execute("INSERT INTO events VALUES (900, 9, 1.0)")
        database.checkpoint()
        database.execute("INSERT INTO events VALUES (901, 9, 1.0)")
        database.checkpoint()
        survived = {p.name for p in table_dir.iterdir()}
        assert first <= survived, "pinned generation dir was deleted"
        assert database.storage.pinned_generations() == 1
        assert database.storage.retired_generations() >= 1
        # the snapshot still reads the pre-write state, bit-exact
        frozen = snapshot.catalog.tables["events"]
        assert frozen.row_count == EVENT_ROWS
        snapshot.release()
        after = {p.name for p in table_dir.iterdir()}
        assert first.isdisjoint(after), "stale generation not GC'd"
        assert database.storage.pinned_generations() == 0
        assert database.storage.retired_generations() == 0
        snapshot.release()  # idempotent
        database.close()

    def test_readers_bit_exact_while_writer_publishes(self, tmp_path):
        database = make_database(path=str(tmp_path), parallelism=2)
        database.checkpoint()
        references = {
            group: database.execute(olap(group)).rows
            for group in range(4)
        }
        errors = []
        stop = threading.Event()
        with Server(database, queue_capacity=64, dispatchers=3) as server:

            def reader(group):
                with server.open_session(tenant=f"r{group}") as s:
                    while not stop.is_set():
                        rows = s.execute(olap(group)).rows
                        if rows != references[group]:
                            errors.append((group, rows))
                            return

            threads = [
                threading.Thread(target=reader, args=(group,))
                for group in range(4)
            ]
            for thread in threads:
                thread.start()
            with server.open_session(tenant="writer") as writer:
                for sequence in range(6):
                    writer.execute(
                        "INSERT INTO events VALUES "
                        f"({1000 + sequence}, 999, 1.0)"
                    )
                    database.checkpoint()
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert database.storage.pinned_generations() == 0
        assert database.storage.retired_generations() == 0
        # exactly one live generation remains on disk
        generations = list((tmp_path / "tables" / "events").iterdir())
        assert len(generations) == 1
        database.close()

    def test_frozen_table_rejects_writes(self):
        database = make_database()
        snapshot = database.snapshot()
        frozen = snapshot.catalog.tables["events"]
        with pytest.raises(Exception, match="read-only snapshot"):
            frozen.append_rows([(1, 1, 1.0)])
        snapshot.release()
        database.close()

    def test_chaos_faults_including_serve_admit(self):
        """REPRO_FAULTS grammar drives the serving chaos variant."""
        injector = faults.parse_spec(
            "seed=7,serve.admit=prob:0.2,worker.task=prob:0.05"
        )
        database = make_database(parallelism=2)
        references = {
            group: database.execute(olap(group)).rows
            for group in range(4)
        }
        completed, rejected, failures = [], [], []
        with faults.active(injector):
            with Server(
                database, queue_capacity=32, dispatchers=2
            ) as server:

                def client(index):
                    with server.open_session(
                        timeout_seconds=30.0
                    ) as s:
                        for turn in range(8):
                            group = (index + turn) % 4
                            try:
                                rows = s.execute(olap(group)).rows
                            except QueryRejectedError:
                                rejected.append(group)
                                continue
                            except Exception as error:  # noqa: BLE001
                                failures.append(repr(error))
                                continue
                            if rows != references[group]:
                                failures.append(f"bleed grp {group}")
                            completed.append(group)

                threads = [
                    threading.Thread(target=client, args=(i,))
                    for i in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        assert failures == []
        assert len(completed) + len(rejected) == 32
        assert completed, "every query was rejected"
        stats = injector.statistics()
        assert stats["serve.admit"]["visits"] >= 32
        database.close()


class TestSystemTablesAndMetrics:
    def test_sessions_and_admission_queue_tables(self):
        database = make_database()
        server = Server(database, queue_capacity=8, dispatchers=1)
        session = server.open_session(tenant="acme", priority=3)
        session.execute(olap(0))
        rows = database.execute(
            "SELECT session_id, tenant, priority, state, completed "
            "FROM system.sessions"
        ).rows
        assert (session.session_id, "acme", 3, "open", 1) in rows
        queue_result = database.execute(
            "SELECT position, sql, queued_seconds "
            "FROM system.admission_queue"
        )
        assert queue_result.row_count == 0  # drained
        server.close()
        rows = database.execute(
            "SELECT state FROM system.sessions"
        ).rows
        assert rows == [("closed",)]
        database.close()

    def test_active_queries_has_session_columns(self):
        database = make_database()
        with Server(database) as server:
            with server.open_session(tenant="acme") as session:
                # the observing query itself runs session-less through
                # the engine, but the schema must expose the columns
                result = database.execute(
                    "SELECT query_id, session_id, tenant "
                    "FROM system.active_queries"
                )
                assert result.schema.names[-2:] == (
                    "session_id",
                    "tenant",
                )
                # and a session-scoped row carries its identity
                rows = session.execute(
                    "SELECT session_id, tenant "
                    "FROM system.active_queries"
                ).rows
                assert (session.session_id, "acme") in rows
        database.close()

    def test_prometheus_round_trip_of_server_metrics(self):
        database = make_database()
        with Server(database, queue_capacity=1, dispatchers=1) as server:
            session = server.open_session(timeout_seconds=30.0)
            futures = []
            for index in range(20):
                try:
                    futures.append(session.submit(olap(index % 4)))
                except QueryRejectedError:
                    pass
            for future in futures:
                try:
                    future.wait(30.0)
                except QueryRejectedError:
                    pass
            text = database.export_metrics_text()
            parsed = parse_prometheus_text(text)
            assert "repro_server_queries_rejected" in parsed
            assert "repro_server_queue_depth" in parsed
            assert "repro_server_queries_admitted" in parsed
            rejected = parsed["repro_server_queries_rejected"]
            assert rejected["value"] >= 1.0
            assert rejected["type"] == "counter"
        database.close()


class TestWireProtocol:
    def test_round_trip(self):
        database = make_database()
        with Server(database) as server, WireServer(server) as wire:
            with WireClient(
                wire.host, wire.port, tenant="wire", priority=2
            ) as client:
                assert client.session_id
                response = client.query(olap(1), request_id=7)
                assert response["id"] == 7
                assert response["columns"] == ["grp", "col1", "col2"]
                assert response["rows"][0][0] == 1
                assert response["row_count"] == 1
                # values crossed the wire as plain JSON scalars
                assert all(
                    isinstance(value, (int, float))
                    for value in response["rows"][0]
                )
        database.close()

    def test_errors_reraise_typed(self):
        database = make_database()
        with Server(database) as server, WireServer(server) as wire:
            with WireClient(wire.host, wire.port) as client:
                with pytest.raises(SqlSyntaxError):
                    client.query("SELEC nonsense")
                # the connection survives a failed query
                assert client.query(olap(0))["row_count"] == 1
        database.close()

    def test_disconnect_closes_session(self):
        database = make_database()
        with Server(database) as server, WireServer(server) as wire:
            client = WireClient(wire.host, wire.port)
            client.query(olap(0))
            # abrupt disconnect: no close op, just tear the socket down
            import socket as _socket

            client._socket.shutdown(_socket.SHUT_RDWR)
            client._socket.close()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                states = [
                    stats["state"]
                    for stats in server.sessions_snapshot()
                ]
                if states == ["closed"]:
                    break
                time.sleep(0.02)
            assert states == ["closed"]
        database.close()
