import numpy as np
import pytest

from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError, TypeMismatchError


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        ("i", SqlType.INTEGER),
        ("f", SqlType.FLOAT),
        ("b", SqlType.BOOLEAN),
    )


@pytest.fixture
def batch(schema) -> VectorBatch:
    return VectorBatch.from_dict(
        schema,
        {
            "i": np.array([1, 2, 3, 4]),
            "f": np.array([0.5, -1.0, 2.0, 0.0], dtype=np.float32),
            "b": np.array([True, False, True, False]),
        },
    )


class TestLiterals:
    def test_of_int(self):
        literal = Literal.of(3)
        assert literal.sql_type is SqlType.INTEGER

    def test_of_bool_before_int(self):
        assert Literal.of(True).sql_type is SqlType.BOOLEAN

    def test_unsupported_literal(self):
        with pytest.raises(TypeMismatchError):
            Literal.of(object())

    def test_broadcast(self, batch):
        values = Literal.of(7).evaluate(batch)
        assert values.tolist() == [7, 7, 7, 7]

    def test_string_rendering_escapes_quotes(self):
        assert str(Literal.of("o'clock")) == "'o''clock'"


class TestArithmetic:
    def test_add(self, batch, schema):
        expr = BinaryOp("+", ColumnRef("i"), ColumnRef("f"))
        assert expr.evaluate(batch).tolist() == [1.5, 1.0, 5.0, 4.0]
        assert expr.output_type(schema) is SqlType.FLOAT

    def test_int_division_is_float(self, batch, schema):
        expr = BinaryOp("/", ColumnRef("i"), Literal.of(2))
        assert expr.evaluate(batch).tolist() == [0.5, 1.0, 1.5, 2.0]
        assert expr.output_type(schema) is SqlType.DOUBLE

    def test_multiply_type(self, schema):
        expr = BinaryOp("*", ColumnRef("f"), ColumnRef("f"))
        assert expr.output_type(schema) is SqlType.FLOAT

    def test_unary_minus(self, batch):
        expr = UnaryOp("-", ColumnRef("i"))
        assert expr.evaluate(batch).tolist() == [-1, -2, -3, -4]


class TestComparisonsAndLogic:
    def test_comparison_returns_bool(self, batch, schema):
        expr = BinaryOp(">", ColumnRef("f"), Literal.of(0.0))
        assert expr.evaluate(batch).tolist() == [True, False, True, False]
        assert expr.output_type(schema) is SqlType.BOOLEAN

    def test_and_or(self, batch):
        gt = BinaryOp(">=", ColumnRef("i"), Literal.of(2))
        expr = BinaryOp("AND", gt, ColumnRef("b"))
        assert expr.evaluate(batch).tolist() == [False, False, True, False]
        expr = BinaryOp("OR", gt, ColumnRef("b"))
        assert expr.evaluate(batch).tolist() == [True, True, True, True]

    def test_not(self, batch):
        expr = UnaryOp("NOT", ColumnRef("b"))
        assert expr.evaluate(batch).tolist() == [False, True, False, True]

    def test_and_requires_boolean(self, batch):
        expr = BinaryOp("AND", ColumnRef("i"), ColumnRef("b"))
        with pytest.raises(ExecutionError):
            expr.evaluate(batch)


class TestCase:
    def test_case_with_else(self, batch):
        expr = CaseWhen(
            (
                (
                    BinaryOp("=", ColumnRef("i"), Literal.of(1)),
                    Literal.of(10.0),
                ),
                (
                    BinaryOp("=", ColumnRef("i"), Literal.of(2)),
                    Literal.of(20.0),
                ),
            ),
            Literal.of(0.0),
        )
        assert expr.evaluate(batch).tolist() == [10.0, 20.0, 0.0, 0.0]

    def test_case_without_else_defaults_to_zero(self, batch):
        expr = CaseWhen(
            (
                (
                    BinaryOp("=", ColumnRef("i"), Literal.of(3)),
                    ColumnRef("f"),
                ),
            ),
        )
        assert expr.evaluate(batch).tolist() == [0.0, 0.0, 2.0, 0.0]

    def test_first_matching_branch_wins(self, batch):
        expr = CaseWhen(
            (
                (BinaryOp(">", ColumnRef("i"), Literal.of(0)), Literal.of(1)),
                (BinaryOp(">", ColumnRef("i"), Literal.of(2)), Literal.of(2)),
            ),
        )
        assert expr.evaluate(batch).tolist() == [1, 1, 1, 1]


class TestFunctionsAndCast:
    def test_function_call(self, batch):
        expr = FunctionCall("EXP", (Literal.of(0.0),))
        assert expr.evaluate(batch).tolist() == [1.0] * 4

    def test_sigmoid_float32_preserved(self, batch):
        expr = FunctionCall("SIGMOID", (ColumnRef("f"),))
        assert expr.evaluate(batch).dtype == np.float32

    def test_cast_to_integer_truncates(self, batch):
        expr = Cast(ColumnRef("f"), SqlType.INTEGER)
        assert expr.evaluate(batch).tolist() == [0, -1, 2, 0]

    def test_cast_to_varchar(self, batch):
        expr = Cast(ColumnRef("i"), SqlType.VARCHAR)
        assert expr.evaluate(batch).tolist() == ["1", "2", "3", "4"]


class TestMetadata:
    def test_referenced_columns(self):
        expr = BinaryOp(
            "+",
            FunctionCall("EXP", (ColumnRef("a"),)),
            CaseWhen(((ColumnRef("b"), ColumnRef("c")),), ColumnRef("d")),
        )
        assert expr.referenced_columns() == {"a", "b", "c", "d"}

    def test_str_roundtrippable_shape(self):
        expr = BinaryOp("*", ColumnRef("x"), Literal.of(2))
        assert str(expr) == "(x * 2)"
