"""Run every example script end-to-end.

Examples are the public face of the library; these tests keep them
executable and assert the key lines of their output, so documentation
rot fails CI rather than users.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.example
def test_quickstart():
    output = run_example("quickstart.py")
    assert "ML-To-SQL generated" in output
    assert "native MODEL JOIN" in output
    assert "TF(Python) baseline" in output
    # Every approach must agree with the reference closely.
    for line in output.splitlines():
        if "max |err|" in line:
            error = float(line.rsplit(":", 1)[1])
            assert error < 1e-3, line


@pytest.mark.example
def test_iris_classification():
    output = run_example("iris_classification.py")
    in_db = next(
        line for line in output.splitlines() if "in-database accuracy" in line
    )
    accuracy = float(in_db.rsplit(":", 1)[1])
    assert accuracy > 0.9
    assert "avg virginica score by true species" in output


@pytest.mark.example
def test_timeseries_forecast():
    output = run_example("timeseries_forecast.py")
    assert "window rows: 1998" in output
    for line in output.splitlines():
        if "max |err|" in line:
            error = float(line.rsplit(":", 1)[1])
            assert error < 1e-3, line


@pytest.mark.example
def test_sensor_pipeline():
    output = run_example("sensor_pipeline.py")
    assert "alarms per site" in output
    summary = next(
        line for line in output.splitlines() if "alarms raised" in line
    )
    alarms = int(summary.split()[0])
    planted = int(summary.split(",")[1].split()[0])
    # The detector finds roughly the planted anomalies.
    assert 0.5 * planted <= alarms <= 2.0 * planted


@pytest.mark.example
def test_model_catalog():
    output = run_example("model_catalog.py")
    assert "registered models" in output
    assert "clf_v1" in output and "clf_v2" in output
    assert "calibrated cost model predicts" in output
    assert "clf_v1 registered? False" in output
