"""Package-level wiring: attach/connect, version, error hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import errors


class TestWiring:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_connect_enables_model_join(self, small_dense_model):
        from repro.core.registry import publish_model

        db = repro.connect()
        db.execute(
            "CREATE TABLE t (id INTEGER, a FLOAT, b FLOAT, c FLOAT, "
            "d FLOAT)"
        )
        db.execute("INSERT INTO t VALUES (1, 0.1, 0.2, 0.3, 0.4)")
        publish_model(db, "m", small_dense_model)
        result = db.execute("SELECT id, prediction_0 FROM t MODEL JOIN m")
        assert result.row_count == 1

    def test_attach_returns_database(self):
        db = repro.Database()
        assert repro.attach(db) is db

    def test_plain_database_lacks_model_join(self):
        from repro.errors import PlanError

        db = repro.Database()
        db.execute("CREATE TABLE t (a FLOAT)")
        with pytest.raises(PlanError):
            db.execute("SELECT * FROM t MODEL JOIN m")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.DatabaseError,
            errors.ModelError,
            errors.DeviceError,
            errors.ModelJoinError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    @pytest.mark.parametrize(
        "subclass",
        [
            errors.CatalogError,
            errors.SqlSyntaxError,
            errors.BindError,
            errors.PlanError,
            errors.ExecutionError,
            errors.TypeMismatchError,
        ],
    )
    def test_database_errors(self, subclass):
        assert issubclass(subclass, errors.DatabaseError)

    def test_unsupported_model_is_modeljoin_error(self):
        assert issubclass(
            errors.UnsupportedModelError, errors.ModelJoinError
        )

    def test_syntax_error_carries_position(self):
        error = errors.SqlSyntaxError("bad", position=42)
        assert "position 42" in str(error)
        assert error.position == 42

    def test_one_except_catches_everything(self):
        caught = 0
        for raise_one in (
            lambda: (_ for _ in ()).throw(errors.BindError("x")),
            lambda: (_ for _ in ()).throw(errors.ModelGraphError("x")),
            lambda: (_ for _ in ()).throw(errors.DeviceError("x")),
        ):
            try:
                next(raise_one())
            except errors.ReproError:
                caught += 1
        assert caught == 3


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=-(2**40), max_value=2**40),
            st.floats(
                allow_nan=False, width=32, min_value=-1e6, max_value=1e6
            ),
            st.booleans(),
        ),
        max_size=30,
    )
)
def test_csv_roundtrip_property(tmp_path_factory, rows):
    """Property: export -> load reproduces any numeric/boolean table."""
    from repro.db.csv_io import export_csv, load_csv

    tmp_path = tmp_path_factory.mktemp("csv")
    db = repro.Database()
    db.execute("CREATE TABLE t (i INTEGER, v FLOAT, ok BOOLEAN)")
    clean = [(i, float(np.float32(v)), ok) for i, v, ok in rows]
    if clean:
        db.table("t").append_rows(clean)
    path = tmp_path / "dump.csv"
    export_csv(db, path, query="SELECT * FROM t")
    db.execute("CREATE TABLE back (i INTEGER, v FLOAT, ok BOOLEAN)")
    load_csv(db, "back", path)
    original = db.execute("SELECT * FROM t").rows
    reloaded = db.execute("SELECT * FROM back").rows
    assert len(original) == len(reloaded)
    for left, right in zip(sorted(original), sorted(reloaded)):
        assert left[0] == right[0]
        assert np.float32(left[1]) == np.float32(right[1])
        assert left[2] == right[2]
