"""Cross-query model build cache: hits, invalidation, correctness."""

import numpy as np
import pytest

import repro
from repro.core.modeljoin.cache import CacheKey, ModelCache
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.nn.layers import Dense
from repro.nn.model import Sequential

ROWS = 600


def make_db(parallelism: int = 1):
    db = repro.connect(parallelism=parallelism)
    db.execute(
        "CREATE TABLE fact (id BIGINT, f0 FLOAT, f1 FLOAT, f2 FLOAT) "
        "PARTITION BY (id) PARTITIONS "
        f"{max(parallelism, 1)}"
    )
    rng = np.random.default_rng(11)
    db.table("fact").append_columns(
        id=np.arange(ROWS, dtype=np.int64),
        f0=rng.random(ROWS, dtype=np.float32),
        f1=rng.random(ROWS, dtype=np.float32),
        f2=rng.random(ROWS, dtype=np.float32),
    )
    return db


def make_model(seed: int = 1) -> Sequential:
    return Sequential(
        [Dense(8, "relu"), Dense(2, "sigmoid")], input_width=3, seed=seed
    )


def run_query(db):
    """One ModelJoin query; returns (predictions, profile)."""
    runner = NativeModelJoin(db, "m")
    predictions = runner.predict(
        "fact", "id", ["f0", "f1", "f2"], parallel=db.parallelism > 1
    )
    return predictions, runner.last_profile


class TestWarmQueries:
    def test_second_query_hits_cache(self):
        db = make_db()
        publish_model(db, "m", make_model())
        cold_predictions, cold_profile = run_query(db)
        warm_predictions, warm_profile = run_query(db)
        assert cold_profile.counters.get("model-cache-misses") == 1
        assert cold_profile.counters.get("model-cache-hits") == 0
        assert warm_profile.counters.get("model-cache-hits") == 1
        assert warm_profile.counters.get("model-cache-misses") == 0
        np.testing.assert_array_equal(cold_predictions, warm_predictions)
        db.close()

    def test_warm_build_phase_near_zero(self):
        db = make_db()
        publish_model(db, "m", make_model())
        _, cold_profile = run_query(db)
        _, warm_profile = run_query(db)
        cold_build = cold_profile.stopwatch.phases["modeljoin-build"]
        warm_build = warm_profile.stopwatch.phases["modeljoin-build"]
        assert warm_build < cold_build / 5
        db.close()

    def test_cached_predictions_match_uncached_engine(self):
        cached = make_db()
        publish_model(cached, "m", make_model())
        run_query(cached)  # populate
        warm_predictions, _ = run_query(cached)

        uncached = make_db()
        uncached.model_cache = None
        publish_model(uncached, "m", make_model())
        plain_predictions, plain_profile = run_query(uncached)
        assert plain_profile.counters.get("model-cache-hits") == 0
        assert plain_profile.counters.get("model-cache-misses") == 0
        np.testing.assert_array_equal(warm_predictions, plain_predictions)
        cached.close()
        uncached.close()

    def test_parallel_pipelines_share_one_hit(self):
        db = make_db(parallelism=4)
        publish_model(
            db, "m", make_model(), model_table_partitions=4
        )
        run_query(db)
        warm_predictions, warm_profile = run_query(db)
        # One decision per query, not one per pipeline — a split
        # decision would deadlock on the build barrier.
        assert warm_profile.counters.get("model-cache-hits") == 1
        assert len(warm_predictions) == ROWS
        db.close()

    def test_sql_model_join_uses_the_same_cache(self):
        db = make_db()
        publish_model(db, "m", make_model())
        run_query(db)  # native API populates the cache
        db.execute(
            "SELECT id, m.prediction_0 FROM fact "
            "MODEL JOIN m USING (f0, f1, f2)"
        )
        assert db.last_profile.counters.get("model-cache-hits") == 1
        db.close()


class TestInvalidation:
    def test_insert_into_model_table_misses_and_changes_predictions(self):
        db = make_db()
        publish_model(db, "m", make_model())
        before, _ = run_query(db)
        run_query(db)  # warm: entry definitely resident

        # Overwrite one weight: rows fill by (node_in, node) coordinates
        # and later rows win, so re-inserting an existing coordinate
        # with a new w_i value changes the rebuilt model.
        table = db.table("m_table")
        batch = next(table.scan())
        row = list(batch.to_rows()[len(batch) // 2])
        weight_position = table.schema.position_of("w_i")
        row[weight_position] = float(row[weight_position]) + 5.0
        version_before = table.version
        table.append_rows([tuple(row)])
        assert table.version == version_before + 1

        after, profile = run_query(db)
        assert profile.counters.get("model-cache-misses") == 1
        assert profile.counters.get("model-cache-hits") == 0
        assert not np.array_equal(before, after)
        db.close()

    def test_reregister_invalidates_and_changes_predictions(self):
        db = make_db()
        publish_model(db, "m", make_model(seed=1))
        before, _ = run_query(db)
        publish_model(db, "m", make_model(seed=2), replace=True)
        after, profile = run_query(db)
        assert profile.counters.get("model-cache-misses") == 1
        assert not np.array_equal(before, after)
        db.close()

    def test_drop_table_evicts_entries(self):
        db = make_db()
        publish_model(db, "m", make_model())
        run_query(db)
        assert len(db.model_cache) == 1
        db.execute("DROP TABLE m_table")
        assert len(db.model_cache) == 0
        assert db.model_cache.statistics()["invalidations"] == 1
        assert db.model_cache.resident_bytes == 0
        db.close()

    def test_recreated_table_cannot_alias_old_entry(self):
        db = make_db()
        publish_model(db, "m", make_model(seed=1))
        run_query(db)
        old_uid = db.table("m_table").uid
        db.execute("DROP TABLE m_table")
        publish_model(db, "m", make_model(seed=2))
        # Same name, fresh identity: version counters restart but the
        # uid differs, so even a stale entry could never match.
        assert db.table("m_table").uid != old_uid
        _, profile = run_query(db)
        assert profile.counters.get("model-cache-misses") == 1
        db.close()


class _StubModel:
    def __init__(self, nbytes: int):
        self._nbytes = nbytes

    def nominal_bytes(self) -> int:
        return self._nbytes


def stub_key(tag: int) -> CacheKey:
    return CacheKey(
        model_table="t",
        table_uid=tag,
        table_version=0,
        model_name="m",
        device="cpu",
        vector_size=1024,
        replicate_bias=True,
    )


class TestCacheDataStructure:
    def test_lru_eviction_respects_capacity(self):
        cache = ModelCache(capacity_bytes=250)
        cache.put(stub_key(1), _StubModel(100))
        cache.put(stub_key(2), _StubModel(100))
        cache.get(stub_key(1))  # make key 2 the LRU entry
        cache.put(stub_key(3), _StubModel(100))
        assert cache.get(stub_key(2)) is None
        assert cache.get(stub_key(1)) is not None
        assert cache.get(stub_key(3)) is not None
        assert cache.statistics()["evictions"] == 1
        assert cache.resident_bytes <= 250

    def test_oversized_build_not_retained(self):
        cache = ModelCache(capacity_bytes=50)
        cache.put(stub_key(1), _StubModel(100))
        assert len(cache) == 0
        assert cache.resident_bytes == 0

    def test_invalidate_table_releases_bytes(self):
        cache = ModelCache()
        cache.put(stub_key(1), _StubModel(100))
        removed = cache.invalidate_table("T")  # case-insensitive
        assert removed == 1
        assert cache.resident_bytes == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelCache(capacity_bytes=-1)
