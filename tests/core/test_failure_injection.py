"""Failure injection: corrupted model tables and broken inputs.

The §5.5 sanity checks exist because a corrupted model table would
otherwise fail late (or worse, silently).  These tests verify the
failure behaviour of the build phase itself, and that the validator
flags everything the builder would choke on.
"""

import numpy as np
import pytest

import repro
from repro.core.modeljoin.builder import ModelBuilder
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.validation import verify_model_table
from repro.db.catalog import LayerMetadata
from repro.db.vector import VectorBatch
from repro.errors import ModelJoinError
from repro.nn.layers import Dense
from repro.nn.model import Sequential


def fresh_builder(input_width=2, units=3):
    return ModelBuilder(
        input_width=input_width,
        layers=[LayerMetadata("dense", units, "relu")],
        parties=1,
        vector_size=16,
    )


def edge_batch(builder, rows):
    """Rows in the model-table schema of the builder's model."""
    from repro.core.ml_to_sql.representation import (
        MlToSqlOptions,
        model_table_schema,
    )

    schema = model_table_schema(MlToSqlOptions())
    columns = {name: [] for name in schema.names}
    for row in rows:
        for name, value in zip(schema.names, row):
            columns[name].append(value)
    arrays = [
        np.asarray(columns[name], dtype=column.sql_type.numpy_dtype)
        for name, column in zip(schema.names, schema)
    ]
    return VectorBatch(schema, arrays)


class TestBuilderRejectsCorruption:
    def test_dangling_source_raises(self):
        builder = fresh_builder()
        # dense block nodes are [2, 4]; node_in 99 does not exist
        batch = edge_batch(builder, [(99, 2) + (0.0,) * 12])
        with pytest.raises(ModelJoinError, match="node_in"):
            builder.consume_batch(batch)

    def test_lstm_source_outside_state_block(self):
        builder = ModelBuilder(
            input_width=3,
            layers=[LayerMetadata("lstm", 2, "tanh", time_steps=3)],
            parties=1,
            vector_size=16,
        )
        batch = edge_batch(builder, [(7, 0) + (0.0,) * 12])
        with pytest.raises(ModelJoinError, match="state block"):
            builder.consume_batch(batch)

    def test_rows_outside_all_blocks_are_ignored(self):
        # Rows addressing non-existent target nodes match no block and
        # are skipped by the builder (the validator flags them).
        builder = fresh_builder()
        batch = edge_batch(builder, [(0, 999) + (0.0,) * 12])
        builder.consume_batch(batch)  # no exception
        assert builder.rows_consumed == 1


class TestValidatorGuardsTheBuilder:
    """Everything that would corrupt a build is caught by the §5.5
    validator first."""

    def _published(self):
        db = repro.connect()
        model = Sequential(
            [Dense(3, "relu"), Dense(1)], input_width=2, seed=1
        )
        publish_model(db, "clf", model)
        return db, model

    def test_clean_table_builds_and_validates(self):
        db, model = self._published()
        assert verify_model_table(db, "clf").ok
        db.execute("CREATE TABLE f (id INTEGER, a FLOAT, b FLOAT)")
        db.execute("INSERT INTO f VALUES (1, 0.5, 0.5)")
        runner = NativeModelJoin(db, "clf")
        predictions = runner.predict("f", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions,
            model.predict(np.array([[0.5, 0.5]], dtype=np.float32)),
            atol=1e-5,
        )

    def test_corruption_that_breaks_build_fails_validation(self):
        db, _ = self._published()
        table = db.table("clf_table")
        table.append_rows([(42, 3) + (1.0,) * 12])  # dangling source
        report = verify_model_table(db, "clf")
        assert not report.ok
        runner = NativeModelJoin(db, "clf")
        db.execute("CREATE TABLE f (id INTEGER, a FLOAT, b FLOAT)")
        db.execute("INSERT INTO f VALUES (1, 0.5, 0.5)")
        with pytest.raises(ModelJoinError):
            runner.predict("f", "id", ["a", "b"])


class TestRunnerInputFailures:
    def test_missing_fact_table(self):
        db, _ = TestValidatorGuardsTheBuilder()._published()
        from repro.errors import CatalogError

        runner = NativeModelJoin(db, "clf")
        with pytest.raises(CatalogError):
            runner.predict("nonexistent", "id", ["a", "b"])

    def test_missing_input_column(self):
        db, _ = TestValidatorGuardsTheBuilder()._published()
        db.execute("CREATE TABLE f (id INTEGER, a FLOAT)")
        runner = NativeModelJoin(db, "clf")
        from repro.errors import BindError

        with pytest.raises(BindError):
            runner.predict("f", "id", ["a", "missing"])

    def test_non_numeric_inputs_rejected_by_udf(self):
        db = repro.connect()
        db.execute("CREATE TABLE f (id INTEGER, s VARCHAR)")
        db.execute("INSERT INTO f VALUES (1, 'oops')")
        from repro.core.udf_integration.inference_udf import UdfModelJoin

        model = Sequential([Dense(1)], input_width=1, seed=0)
        runner = UdfModelJoin(db, model, name="bad_input")
        with pytest.raises(Exception):
            runner.predict("f", "id", ["s"])
