"""Native ModelJoin internals: builder, inference, operator."""

import numpy as np
import pytest

from repro.core.ml_to_sql.loader import load_model_table
from repro.core.modeljoin.builder import (
    DenseLayerWeights,
    LstmLayerWeights,
    ModelBuilder,
)
from repro.core.modeljoin.inference import (
    VectorizedInference,
    pack_columns,
    unpack_columns,
)
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import model_metadata, publish_model
from repro.db.catalog import LayerMetadata
from repro.db.engine import Database
from repro.device import HostDevice, SimulatedGpu
from repro.errors import ModelJoinError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


def build_from_table(db, model, parties=1, vector_size=1024):
    """Feed the stored model table through a ModelBuilder."""
    relational = load_model_table(db, "mj_model", model, replace=True)
    metadata = model_metadata("mj", "mj_model", model)
    builder = ModelBuilder(
        input_width=metadata.input_width,
        layers=list(metadata.layers),
        parties=parties,
        vector_size=vector_size,
    )
    for batch in db.table("mj_model").scan():
        builder.consume_batch(batch)
    return builder, relational


class TestBuilder:
    def test_dense_weights_reconstructed(self):
        db = Database()
        model = Sequential(
            [Dense(3, "relu"), Dense(2)], input_width=4, seed=1
        )
        builder, _ = build_from_table(db, model)
        built = builder.wait_and_finalize(HostDevice())
        assert isinstance(built.layers[0], DenseLayerWeights)
        np.testing.assert_allclose(
            built.layers[0].kernel, model.layers[0].kernel
        )
        np.testing.assert_allclose(
            built.layers[1].bias, model.layers[1].bias
        )

    def test_lstm_weights_reconstructed(self):
        db = Database()
        model = Sequential([Lstm(4), Dense(1)], input_width=3, seed=2)
        builder, _ = build_from_table(db, model)
        built = builder.wait_and_finalize(HostDevice())
        lstm = built.layers[0]
        assert isinstance(lstm, LstmLayerWeights)
        np.testing.assert_allclose(lstm.kernel, model.layers[0].kernel)
        np.testing.assert_allclose(
            lstm.recurrent_kernel, model.layers[0].recurrent_kernel
        )
        np.testing.assert_allclose(lstm.bias, model.layers[0].bias)
        assert lstm.time_steps == 3

    def test_bias_matrix_replicated_to_vector_size(self):
        db = Database()
        model = Sequential([Dense(2)], input_width=2, seed=0)
        builder, _ = build_from_table(db, model, vector_size=64)
        built = builder.wait_and_finalize(HostDevice())
        assert built.layers[0].bias_matrix.shape == (64, 2)
        assert (
            built.layers[0].bias_matrix == built.layers[0].bias
        ).all()

    def test_replication_disabled(self):
        db = Database()
        model = Sequential([Dense(2)], input_width=2, seed=0)
        relational = load_model_table(db, "mj_model", model, replace=True)
        del relational
        metadata = model_metadata("mj", "mj_model", model)
        builder = ModelBuilder(
            input_width=2,
            layers=list(metadata.layers),
            parties=1,
            vector_size=64,
            replicate_bias=False,
        )
        for batch in db.table("mj_model").scan():
            builder.consume_batch(batch)
        built = builder.wait_and_finalize(HostDevice())
        assert built.layers[0].bias_matrix is None

    def test_rows_consumed_counted(self):
        db = Database()
        model = Sequential([Dense(3)], input_width=2, seed=0)
        builder, relational = build_from_table(db, model)
        assert builder.rows_consumed == relational.edge_count

    def test_gpu_finalize_uploads_once(self):
        db = Database()
        model = Sequential([Dense(3)], input_width=2, seed=0)
        builder, _ = build_from_table(db, model)
        gpu = SimulatedGpu()
        built = builder.wait_and_finalize(gpu)
        assert built.on_device
        assert gpu.stats.bytes_to_device > 0

    def test_lstm_must_be_first(self):
        with pytest.raises(ModelJoinError):
            ModelBuilder(
                input_width=2,
                layers=[
                    LayerMetadata("dense", 2, "relu"),
                    LayerMetadata("lstm", 2, "tanh", time_steps=2),
                ],
                parties=1,
                vector_size=16,
            )

    def test_empty_layers_rejected(self):
        with pytest.raises(ModelJoinError):
            ModelBuilder(
                input_width=2, layers=[], parties=1, vector_size=16
            )


class TestInference:
    def test_pack_unpack_roundtrip(self):
        columns = [
            np.arange(5, dtype=np.float32),
            np.arange(5, 10, dtype=np.float32),
        ]
        matrix = pack_columns(columns)
        assert matrix.shape == (5, 2)
        restored = unpack_columns(matrix)
        for original, back in zip(columns, restored):
            np.testing.assert_array_equal(original, back)

    def test_pack_requires_columns(self):
        with pytest.raises(ModelJoinError):
            pack_columns([])

    def test_infer_matches_model(self):
        db = Database()
        model = Sequential(
            [Dense(4, "tanh"), Dense(2, "sigmoid")], input_width=3, seed=3
        )
        builder, _ = build_from_table(db, model, vector_size=128)
        built = builder.wait_and_finalize(HostDevice())
        inference = VectorizedInference(built, HostDevice())
        x = np.random.default_rng(0).normal(size=(50, 3)).astype(np.float32)
        np.testing.assert_allclose(
            inference.infer(x), model.predict(x), atol=1e-5
        )

    def test_wrong_input_width(self):
        db = Database()
        model = Sequential([Dense(1)], input_width=2, seed=0)
        builder, _ = build_from_table(db, model)
        built = builder.wait_and_finalize(HostDevice())
        inference = VectorizedInference(built, HostDevice())
        with pytest.raises(ModelJoinError):
            inference.infer(np.zeros((3, 5), dtype=np.float32))

    def test_batch_larger_than_bias_matrix_rejected(self):
        db = Database()
        model = Sequential([Dense(1)], input_width=2, seed=0)
        builder, _ = build_from_table(db, model, vector_size=8)
        built = builder.wait_and_finalize(HostDevice())
        inference = VectorizedInference(built, HostDevice())
        with pytest.raises(ModelJoinError, match="vector size"):
            inference.infer(np.zeros((16, 2), dtype=np.float32))

    def test_lstm_step_mismatch(self):
        db = Database()
        model = Sequential([Lstm(2), Dense(1)], input_width=3, seed=0)
        builder, _ = build_from_table(db, model)
        built = builder.wait_and_finalize(HostDevice())
        inference = VectorizedInference(built, HostDevice())
        with pytest.raises(ModelJoinError, match="input columns"):
            inference.infer(np.zeros((4, 2), dtype=np.float32))


class TestOperatorAndRunner:
    def _setup(self, rows=300, partitions=1, parallelism=1):
        import repro

        db = repro.connect(parallelism=parallelism)
        db.execute(
            "CREATE TABLE fact (id INTEGER, a FLOAT, b FLOAT) "
            f"PARTITION BY (id) PARTITIONS {partitions} SORTED BY (id)"
        )
        rng = np.random.default_rng(7)
        x = rng.normal(size=(rows, 2)).astype(np.float32)
        db.table("fact").append_columns(
            id=np.arange(rows, dtype=np.int64), a=x[:, 0], b=x[:, 1]
        )
        model = Sequential(
            [Dense(4, "relu"), Dense(1, "sigmoid")], input_width=2, seed=9
        )
        return db, model, x

    def test_serial_runner(self):
        db, model, x = self._setup()
        publish_model(db, "clf", model)
        runner = NativeModelJoin(db, "clf")
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )
        assert runner.last_profile.wall_seconds > 0
        phases = runner.last_profile.stopwatch.phases
        assert "modeljoin-build" in phases
        assert "modeljoin-infer" in phases

    def test_parallel_runner_with_partitioned_model(self):
        db, model, x = self._setup(partitions=4, parallelism=4)
        publish_model(db, "clf", model, model_table_partitions=4)
        runner = NativeModelJoin(db, "clf")
        predictions = runner.predict(
            "fact", "id", ["a", "b"], parallel=True
        )
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )

    def test_parallel_with_broadcast_model_table(self):
        db, model, x = self._setup(partitions=4, parallelism=4)
        publish_model(db, "clf", model)  # single-partition model table
        runner = NativeModelJoin(db, "clf")
        predictions = runner.predict(
            "fact", "id", ["a", "b"], parallel=True
        )
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )

    def test_gpu_runner(self):
        db, model, x = self._setup()
        publish_model(db, "clf", model)
        gpu = SimulatedGpu()
        runner = NativeModelJoin(db, "clf", device=gpu)
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )
        assert gpu.stats.bytes_to_device > 0
        assert runner.last_seconds > 0

    def test_model_memory_accounted(self):
        db, model, _ = self._setup()
        publish_model(db, "clf", model)
        runner = NativeModelJoin(db, "clf")
        _, context = runner.execute("fact", ["a", "b"])
        assert context.memory.peak_bytes > 0
        assert context.memory.current_bytes == 0

    def test_default_input_columns_are_floats(self):
        db, model, x = self._setup()
        publish_model(db, "clf", model)
        runner = NativeModelJoin(db, "clf")
        predictions = runner.predict("fact", "id")  # no explicit columns
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )

    def test_too_few_float_columns(self):
        import repro

        db = repro.connect()
        db.execute("CREATE TABLE thin (id INTEGER, a FLOAT)")
        db.execute("INSERT INTO thin VALUES (1, 0.5)")
        model = Sequential([Dense(1)], input_width=3, seed=0)
        publish_model(db, "wide", model)
        runner = NativeModelJoin(db, "wide")
        with pytest.raises(ModelJoinError, match="explicitly"):
            runner.predict("thin", "id")

    def test_wrong_explicit_column_count(self):
        db, model, _ = self._setup()
        publish_model(db, "clf", model)
        runner = NativeModelJoin(db, "clf")
        with pytest.raises(ModelJoinError, match="expects 2"):
            runner.predict("fact", "id", ["a"])


class TestModelJoinSqlSyntax:
    def test_select_star_model_join(self, cdb, small_dense_model):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 4)).astype(np.float32)
        cdb.execute(
            "CREATE TABLE f (id INTEGER, c0 FLOAT, c1 FLOAT, "
            "c2 FLOAT, c3 FLOAT)"
        )
        cdb.table("f").append_columns(
            id=np.arange(20),
            c0=x[:, 0],
            c1=x[:, 1],
            c2=x[:, 2],
            c3=x[:, 3],
        )
        publish_model(cdb, "clf", small_dense_model)
        result = cdb.execute("SELECT * FROM f MODEL JOIN clf ORDER BY id")
        assert "prediction_0" in result.schema.names
        np.testing.assert_allclose(
            result.column("prediction_0"),
            small_dense_model.predict(x)[:, 0],
            atol=1e-5,
        )

    def test_model_join_nested_in_aggregation(self, cdb, small_dense_model):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 4)).astype(np.float32)
        cdb.execute(
            "CREATE TABLE f (id INTEGER, grp INTEGER, c0 FLOAT, "
            "c1 FLOAT, c2 FLOAT, c3 FLOAT)"
        )
        cdb.table("f").append_columns(
            id=np.arange(30),
            grp=np.arange(30) % 3,
            c0=x[:, 0],
            c1=x[:, 1],
            c2=x[:, 2],
            c3=x[:, 3],
        )
        publish_model(cdb, "clf", small_dense_model)
        result = cdb.execute(
            "SELECT grp, AVG(prediction_0) AS mean_score FROM f "
            "MODEL JOIN clf USING (c0, c1, c2, c3) "
            "GROUP BY grp ORDER BY grp"
        )
        reference = small_dense_model.predict(x)[:, 0]
        for grp, mean_score in result.rows:
            expected = reference[np.arange(30) % 3 == grp].mean()
            assert mean_score == pytest.approx(expected, abs=1e-5)

    def test_model_join_with_where(self, cdb, small_dense_model):
        x = np.ones((10, 4), dtype=np.float32)
        cdb.execute(
            "CREATE TABLE f (id INTEGER, c0 FLOAT, c1 FLOAT, "
            "c2 FLOAT, c3 FLOAT)"
        )
        cdb.table("f").append_columns(
            id=np.arange(10),
            c0=x[:, 0],
            c1=x[:, 1],
            c2=x[:, 2],
            c3=x[:, 3],
        )
        publish_model(cdb, "clf", small_dense_model)
        result = cdb.execute(
            "SELECT id, prediction_0 FROM f MODEL JOIN clf WHERE id < 3 "
            "ORDER BY id"
        )
        assert len(result.rows) == 3
