"""Simulated ODBC and the external-Python baseline."""

import numpy as np
import pytest

from repro.core.client.external import ExternalInference
from repro.core.client.odbc import OdbcConnection
from repro.db.engine import Database
from repro.device import SimulatedGpu
from repro.errors import ExecutionError
from repro.nn.layers import Dense
from repro.nn.model import Sequential


@pytest.fixture
def fact_db() -> tuple[Database, np.ndarray]:
    db = Database()
    db.execute("CREATE TABLE fact (id INTEGER, a FLOAT, b FLOAT)")
    rng = np.random.default_rng(5)
    x = rng.normal(size=(150, 2)).astype(np.float32)
    db.table("fact").append_columns(
        id=np.arange(150, dtype=np.int64), a=x[:, 0], b=x[:, 1]
    )
    return db, x


class TestOdbcConnection:
    def test_fetch_roundtrips_values(self, fact_db):
        db, x = fact_db
        connection = OdbcConnection(db)
        arrays = connection.fetch_arrays(
            "SELECT id, a FROM fact ORDER BY id"
        )
        assert arrays["id"].tolist() == list(range(150))
        np.testing.assert_allclose(arrays["a"], x[:, 0], atol=1e-7)

    def test_stats_populated(self, fact_db):
        db, _ = fact_db
        connection = OdbcConnection(db)
        connection.fetch_arrays("SELECT id, a, b FROM fact")
        stats = connection.last_stats
        assert stats.rows == 150
        assert stats.bytes_on_wire == 150 * (8 + 4 + 4)
        assert stats.serialize_seconds > 0
        assert stats.modeled_wire_seconds == 0.0  # loopback default

    def test_bandwidth_model_accounts_wire_time(self, fact_db):
        db, _ = fact_db
        connection = OdbcConnection(db, bandwidth_bytes_per_second=1e6)
        connection.fetch_arrays("SELECT id FROM fact")
        expected = 150 * 8 / 1e6
        assert connection.last_stats.modeled_wire_seconds == pytest.approx(
            expected
        )

    def test_varchar_rejected(self, fact_db):
        db, _ = fact_db
        db.execute("CREATE TABLE s (t VARCHAR)")
        db.execute("INSERT INTO s VALUES ('x')")
        connection = OdbcConnection(db)
        with pytest.raises(ExecutionError):
            connection.fetch_arrays("SELECT t FROM s")

    def test_upload_arrays(self, fact_db):
        db, _ = fact_db
        db.execute("CREATE TABLE sink (id INTEGER, p FLOAT)")
        connection = OdbcConnection(db)
        stats = connection.upload_arrays(
            "sink",
            {
                "id": np.arange(5, dtype=np.int64),
                "p": np.linspace(0, 1, 5).astype(np.float32),
            },
        )
        assert stats.rows == 5
        assert db.execute("SELECT id, p FROM sink").row_count == 5


class TestExternalInference:
    def test_predictions_match_reference(self, fact_db):
        db, x = fact_db
        model = Sequential(
            [Dense(4, "relu"), Dense(1)], input_width=2, seed=2
        )
        baseline = ExternalInference(db, model)
        report = baseline.run("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            report.predictions, model.predict(x), atol=1e-5
        )

    def test_report_breakdown(self, fact_db):
        db, _ = fact_db
        model = Sequential([Dense(1)], input_width=2, seed=0)
        report = ExternalInference(db, model).run("fact", "id", ["a", "b"])
        assert report.fetch_seconds > 0
        assert report.inference_seconds >= 0
        assert report.total_seconds >= report.fetch_seconds
        assert report.transfer.rows == 150

    def test_gpu_baseline(self, fact_db):
        db, x = fact_db
        model = Sequential([Dense(8, "tanh"), Dense(1)], input_width=2, seed=1)
        baseline = ExternalInference(db, model, device=SimulatedGpu())
        report = baseline.run("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            report.predictions, model.predict(x), atol=1e-5
        )

    def test_remote_bandwidth_increases_total(self, fact_db):
        db, _ = fact_db
        model = Sequential([Dense(1)], input_width=2, seed=0)
        local = ExternalInference(db, model).run("fact", "id", ["a", "b"])
        remote = ExternalInference(
            db, model, bandwidth_bytes_per_second=1e4
        ).run("fact", "id", ["a", "b"])
        assert (
            remote.transfer.modeled_wire_seconds
            > local.transfer.modeled_wire_seconds
        )

    def test_client_batching(self, fact_db):
        db, x = fact_db
        model = Sequential([Dense(1)], input_width=2, seed=0)
        report = ExternalInference(db, model).run(
            "fact", "id", ["a", "b"], batch_size=32
        )
        np.testing.assert_allclose(
            report.predictions, model.predict(x), atol=1e-5
        )
