import numpy as np
import pytest

from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    WEIGHT_COLUMNS,
    blocks_from_dims,
    build_relational_model,
    model_table_schema,
)
from repro.errors import UnsupportedModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


@pytest.fixture
def dense_model() -> Sequential:
    return Sequential(
        [Dense(3, "relu"), Dense(2, "sigmoid")], input_width=4, seed=0
    )


@pytest.fixture
def lstm_model() -> Sequential:
    return Sequential([Lstm(3), Dense(1)], input_width=3, seed=1)


class TestSchema:
    def test_optimized_schema_has_14_columns(self):
        schema = model_table_schema(MlToSqlOptions())
        assert len(schema) == 14
        assert schema.names[:2] == ("node_in", "node")

    def test_classic_schema_has_16_columns(self):
        schema = model_table_schema(
            MlToSqlOptions(optimized_node_ids=False)
        )
        assert len(schema) == 16
        assert schema.names[:4] == ("layer_in", "node_in", "layer", "node")

    def test_weight_columns_are_float(self):
        schema = model_table_schema(MlToSqlOptions())
        for name in WEIGHT_COLUMNS:
            assert schema.type_of(name).value == "FLOAT"


class TestDenseRepresentation:
    def test_edge_count(self, dense_model):
        relational = build_relational_model(dense_model)
        # input identity edges + 4*3 + 3*2
        assert relational.edge_count == 4 + 12 + 6

    def test_blocks_layout(self, dense_model):
        relational = build_relational_model(dense_model)
        kinds = [block.kind for block in relational.blocks]
        assert kinds == ["input", "dense", "dense"]
        firsts = [block.first_node for block in relational.blocks]
        assert firsts == [0, 4, 7]

    def test_input_edges_have_unit_weight(self, dense_model):
        relational = build_relational_model(dense_model)
        schema = model_table_schema(relational.options)
        node_in = schema.position_of("node_in")
        w_i = schema.position_of("w_i")
        input_rows = [
            row for row in relational.rows if row[node_in] == -1
        ]
        assert len(input_rows) == 4
        assert all(row[w_i] == 1.0 for row in input_rows)

    def test_weights_recoverable_from_rows(self, dense_model):
        relational = build_relational_model(dense_model)
        schema = model_table_schema(relational.options)
        positions = {
            name: schema.position_of(name)
            for name in ("node_in", "node", "w_i", "b_i")
        }
        block = relational.blocks[1]
        kernel = np.zeros((4, 3), dtype=np.float32)
        bias = np.zeros(3, dtype=np.float32)
        for row in relational.rows:
            node = row[positions["node"]]
            if block.first_node <= node <= block.last_node:
                source = row[positions["node_in"]]
                kernel[source, node - block.first_node] = row[
                    positions["w_i"]
                ]
                bias[node - block.first_node] = row[positions["b_i"]]
        np.testing.assert_allclose(
            kernel, dense_model.layers[0].kernel, atol=1e-7
        )
        np.testing.assert_allclose(
            bias, dense_model.layers[0].bias, atol=1e-7
        )

    def test_classic_rows_carry_layers(self, dense_model):
        options = MlToSqlOptions(optimized_node_ids=False)
        relational = build_relational_model(dense_model, options)
        schema = model_table_schema(options)
        layer = schema.position_of("layer")
        layers = {row[layer] for row in relational.rows}
        assert layers == {0, 1, 2}


class TestLstmRepresentation:
    def test_edge_count_is_units_squared(self, lstm_model):
        relational = build_relational_model(lstm_model)
        # lstm block 3*3 + dense 3*1
        assert relational.edge_count == 9 + 3

    def test_no_input_block_for_lstm_first(self, lstm_model):
        relational = build_relational_model(lstm_model)
        kinds = [block.kind for block in relational.blocks]
        assert kinds == ["lstm_state", "dense"]

    def test_diagonal_edges_carry_kernel_and_bias(self, lstm_model):
        relational = build_relational_model(lstm_model)
        schema = model_table_schema(relational.options)
        node_in = schema.position_of("node_in")
        node = schema.position_of("node")
        w_i = schema.position_of("w_i")
        block = relational.block("lstm_state")
        for row in relational.rows:
            if not block.first_node <= row[node] <= block.last_node:
                continue
            if row[node_in] == row[node]:
                unit = row[node] - block.first_node
                expected = lstm_model.layers[0].kernel[0, unit]
                assert row[w_i] == pytest.approx(expected)
            else:
                assert row[w_i] == 0.0

    def test_multifeature_lstm_rejected(self):
        model = Sequential(
            [Lstm(2), Dense(1)],
            input_width=4,
            features_per_step=2,
        )
        with pytest.raises(UnsupportedModelError):
            build_relational_model(model)


class TestBlocksFromDims:
    def test_agrees_with_build_for_dense(self, dense_model):
        relational = build_relational_model(dense_model)
        derived = blocks_from_dims(
            4, [("dense", 3, "relu"), ("dense", 2, "sigmoid")]
        )
        assert [
            (block.kind, block.first_node, block.units)
            for block in derived
        ] == [
            (block.kind, block.first_node, block.units)
            for block in relational.blocks
        ]

    def test_agrees_with_build_for_lstm(self, lstm_model):
        relational = build_relational_model(lstm_model)
        derived = blocks_from_dims(
            3, [("lstm", 3, "tanh"), ("dense", 1, "linear")]
        )
        assert [
            (block.kind, block.first_node, block.units)
            for block in derived
        ] == [
            (block.kind, block.first_node, block.units)
            for block in relational.blocks
        ]

    def test_unknown_layer_type(self):
        with pytest.raises(UnsupportedModelError):
            blocks_from_dims(2, [("conv", 3, "relu")])
