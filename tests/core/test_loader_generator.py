"""Loader (both paths) and SQL generator structure tests."""

import numpy as np
import pytest

from repro.core.ml_to_sql.generator import MlToSqlModelJoin, SqlGenerator
from repro.core.ml_to_sql.loader import insert_statements, load_model_table
from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    build_relational_model,
)
from repro.core.ml_to_sql.templates import activation_sql
from repro.db.engine import Database
from repro.errors import UnsupportedModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


@pytest.fixture
def model() -> Sequential:
    return Sequential([Dense(3, "relu"), Dense(1)], input_width=2, seed=4)


class TestLoader:
    def test_bulk_and_statement_paths_identical(self, model):
        relational = build_relational_model(model)
        bulk_db, sql_db = Database(), Database()
        load_model_table(bulk_db, "m", relational)
        for statement in insert_statements(relational, "m"):
            sql_db.execute(statement)
        query = "SELECT * FROM m ORDER BY node, node_in"
        assert bulk_db.execute(query).rows == sql_db.execute(query).rows

    def test_insert_statements_start_with_ddl(self, model):
        relational = build_relational_model(model)
        statements = list(insert_statements(relational, "m"))
        assert statements[0].startswith("CREATE TABLE m")
        assert all(s.startswith("INSERT") for s in statements[1:])

    def test_rows_chunked(self, model):
        relational = build_relational_model(model)
        statements = list(
            insert_statements(relational, "m", rows_per_statement=2)
        )
        inserts = [s for s in statements if s.startswith("INSERT")]
        assert len(inserts) == -(-relational.edge_count // 2)

    def test_sorted_by_node_for_pruning(self, model):
        db = Database()
        relational = load_model_table(db, "m", model)
        nodes = db.execute("SELECT node, node_in FROM m").column("node")
        assert (np.diff(nodes) >= 0).all()
        assert relational.table_name == "m"

    def test_replace(self, model):
        db = Database()
        load_model_table(db, "m", model)
        load_model_table(db, "m", model, replace=True)

    def test_float32_weight_roundtrip_via_sql_text(self):
        # A weight with no short decimal representation must survive
        # the SQL-literal round trip bit-exactly.
        layer = Dense(1, "linear")
        weight = np.float32(1.0) / np.float32(3.0)
        layer.set_weights(np.array([[weight]]), np.array([weight]))
        model = Sequential([layer], input_width=1)
        db = Database()
        relational = build_relational_model(model)
        for statement in insert_statements(relational, "m"):
            db.execute(statement)
        stored = db.execute(
            "SELECT w_i, node FROM m WHERE node_in = 0"
        ).column("w_i")[0]
        assert np.float32(stored) == weight


class TestActivationSql:
    @pytest.mark.parametrize("native", [True, False])
    @pytest.mark.parametrize(
        "name", ["linear", "relu", "sigmoid", "tanh"]
    )
    def test_activation_sql_evaluates_correctly(self, name, native):
        from repro.nn.activations import get_activation

        db = Database()
        db.execute("CREATE TABLE v (x FLOAT)")
        values = [-2.0, -0.5, 0.0, 0.5, 2.0]
        db.execute(
            "INSERT INTO v VALUES "
            + ", ".join(f"({value})" for value in values)
        )
        expression = activation_sql(name, "x", native)
        got = db.execute(f"SELECT {expression} AS y, x FROM v").column("y")
        expected = get_activation(name)(
            np.array(values, dtype=np.float32)
        )
        np.testing.assert_allclose(got, expected, atol=1e-6)

    def test_unknown_activation(self):
        with pytest.raises(UnsupportedModelError):
            activation_sql("swish", "x", True)


class TestGeneratorStructure:
    def test_wrong_input_column_count(self, model):
        db = Database()
        relational = load_model_table(db, "m", model)
        with pytest.raises(UnsupportedModelError, match="2 input columns"):
            SqlGenerator(relational, "f", "id", ["a", "b", "c"])

    def test_unloaded_model_rejected(self, model):
        relational = build_relational_model(model)
        with pytest.raises(UnsupportedModelError, match="load_model_table"):
            SqlGenerator(relational, "f", "id", ["a", "b"])

    def test_lstm_requires_optimized_ids(self):
        db = Database()
        model = Sequential([Lstm(2), Dense(1)], input_width=3)
        options = MlToSqlOptions(optimized_node_ids=False)
        relational = load_model_table(db, "m", model, options)
        with pytest.raises(UnsupportedModelError, match="optimized"):
            SqlGenerator(relational, "f", "id", ["a", "b", "c"])

    def test_nesting_depth_matches_layers(self, model):
        db = Database()
        relational = load_model_table(db, "m", model)
        generator = SqlGenerator(relational, "f", "id", ["a", "b"])
        blocks = generator.building_blocks()
        names = [name for name, _ in blocks]
        assert names == ["input", "dense@2", "dense@5", "output"]
        # every level's SQL contains the previous level's SQL
        for (_, inner), (_, outer) in zip(blocks, blocks[1:]):
            assert inner in outer

    def test_optimized_query_has_range_predicates(self, model):
        db = Database()
        relational = load_model_table(db, "m", model)
        sql = SqlGenerator(relational, "f", "id", ["a", "b"]).inference_query()
        assert "m.node >=" in sql and "m.node <=" in sql
        assert "layer" not in sql.lower()

    def test_classic_query_joins_on_pairs(self, model):
        db = Database()
        options = MlToSqlOptions(optimized_node_ids=False)
        relational = load_model_table(db, "mc", model, options)
        sql = SqlGenerator(relational, "f", "id", ["a", "b"]).inference_query()
        assert "t.layer = m.layer_in" in sql
        assert "m.layer =" in sql

    def test_portable_mode_avoids_native_functions(self):
        db = Database()
        model = Sequential(
            [Dense(2, "sigmoid"), Dense(1, "tanh")], input_width=2
        )
        options = MlToSqlOptions(native_activation_functions=False)
        relational = load_model_table(db, "m", model, options)
        sql = SqlGenerator(relational, "f", "id", ["a", "b"]).inference_query()
        assert "SIGMOID" not in sql and "TANH" not in sql
        assert "EXP" in sql

    def test_payload_columns_joined_late(self, model):
        db = Database()
        relational = load_model_table(db, "m", model)
        sql = SqlGenerator(
            relational, "f", "id", ["a", "b"], payload_columns=["extra"]
        ).inference_query()
        assert "f.extra AS extra" in sql

    def test_multi_output_generates_one_join_per_node(self):
        db = Database()
        model = Sequential([Dense(2), Dense(3)], input_width=2)
        relational = load_model_table(db, "m", model)
        sql = SqlGenerator(relational, "f", "id", ["a", "b"]).inference_query()
        for index in range(3):
            assert f"prediction_{index}" in sql
        assert sql.count("AS r0") == 1 and sql.count("AS r2") == 1


class TestMlToSqlModelJoinRunner:
    def test_end_to_end_predict(self, iris_db, small_dense_model):
        runner = MlToSqlModelJoin(iris_db, small_dense_model)
        predictions = runner.predict(
            "iris", "id", ["f0", "f1", "f2", "f3"]
        )
        features = np.column_stack(
            [
                iris_db.execute(
                    "SELECT id, f0, f1, f2, f3 FROM iris ORDER BY id"
                ).column(name)
                for name in ("f0", "f1", "f2", "f3")
            ]
        )
        reference = small_dense_model.predict(features)
        np.testing.assert_allclose(predictions, reference, atol=1e-4)
