"""Model-table sanity checks (paper Section 5.5)."""

import pytest

import repro
from repro.core.registry import publish_model
from repro.core.validation import verify_model_table
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


@pytest.fixture
def published():
    db = repro.connect()
    model = Sequential(
        [Dense(4, "relu"), Dense(2, "sigmoid")], input_width=3, seed=1
    )
    publish_model(db, "clf", model)
    return db, model


class TestHealthyTables:
    def test_dense_model_passes(self, published):
        db, _ = published
        report = verify_model_table(db, "clf")
        assert report.ok, report.issues
        assert report.edges_checked == 3 + 12 + 8

    def test_lstm_model_passes(self):
        db = repro.connect()
        model = Sequential([Lstm(4), Dense(1)], input_width=3, seed=2)
        publish_model(db, "fc", model)
        report = verify_model_table(db, "fc")
        assert report.ok, report.issues
        assert report.edges_checked == 16 + 4

    def test_report_renders(self, published):
        db, _ = published
        text = str(verify_model_table(db, "clf"))
        assert "OK" in text


class TestCorruptionDetected:
    def _table(self, db):
        return db.table(db.catalog.model("clf").table_name)

    def test_extra_edge_detected(self, published):
        db, _ = published
        # A duplicate edge inside the first dense block.
        self._table(db).append_rows(
            [(0, 3) + (0.5,) * 12]
        )
        report = verify_model_table(db, "clf")
        assert not report.ok
        assert any("expected" in issue for issue in report.issues)
        assert any("duplicate" in issue for issue in report.issues)

    def test_out_of_range_node_detected(self, published):
        db, _ = published
        self._table(db).append_rows([(0, 999) + (0.0,) * 12])
        report = verify_model_table(db, "clf")
        assert any("outside" in issue for issue in report.issues)

    def test_dangling_source_detected(self, published):
        db, _ = published
        # Dense block at nodes 7..8 fed from node 0 (the input block,
        # not the previous layer).
        self._table(db).append_rows([(0, 7) + (0.0,) * 12])
        report = verify_model_table(db, "clf")
        assert any(
            "do not originate" in issue or "expected" in issue
            for issue in report.issues
        )

    def test_non_finite_weight_detected(self, published):
        db, _ = published
        self._table(db).append_rows(
            [(1, 7, float("nan")) + (0.0,) * 11]
        )
        report = verify_model_table(db, "clf")
        assert any("non-finite" in issue for issue in report.issues)

    def test_empty_table_detected(self):
        db = repro.connect()
        model = Sequential([Dense(1)], input_width=1, seed=0)
        publish_model(db, "ghost", model)
        db.execute("DROP TABLE ghost_table")  # cascades the model entry
        from repro.core.ml_to_sql.representation import (
            MlToSqlOptions,
            model_table_schema,
        )
        from repro.core.registry import model_metadata

        db.create_table("ghost_table", model_table_schema(MlToSqlOptions()))
        db.register_model(model_metadata("ghost", "ghost_table", model))
        report = verify_model_table(db, "ghost")
        assert any("empty" in issue for issue in report.issues)

    def test_wrong_schema_detected(self):
        db = repro.connect()
        model = Sequential([Dense(1)], input_width=1, seed=0)
        publish_model(db, "m", model)
        db.execute("DROP TABLE m_table")
        db.execute("CREATE TABLE m_table (a INTEGER, b FLOAT)")
        # re-register: drop cascaded the model entry
        from repro.core.registry import model_metadata

        db.register_model(model_metadata("m", "m_table", model))
        report = verify_model_table(db, "m")
        assert any("schema" in issue for issue in report.issues)
