"""Parallel execution of the inference approaches (paper §4.4/§5.2).

Every partition-parallel path must return exactly the serial results:
the ML-To-SQL generated query (group keys carry the partition key), the
native ModelJoin (shared build + barrier), and the UDF query.
"""

import numpy as np
import pytest

import repro
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.udf_integration.inference_udf import UdfModelJoin
from repro.device import SimulatedGpu
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model, make_lstm_model
from repro.workloads.timeseries import load_windowed_series_table

PARALLELISM = 4


@pytest.fixture
def parallel_iris():
    db = repro.connect(parallelism=PARALLELISM)
    dataset = load_iris_table(db, 3_000, num_partitions=PARALLELISM)
    return db, dataset


class TestParallelDense:
    def test_ml_to_sql_parallel_equals_serial(self, parallel_iris):
        db, dataset = parallel_iris
        model = make_dense_model(8, 2, seed=2)
        runner = MlToSqlModelJoin(db, model)
        columns = list(FEATURE_COLUMNS)
        serial = runner.predict("iris", "id", columns, parallel=False)
        parallel = runner.predict("iris", "id", columns, parallel=True)
        np.testing.assert_allclose(serial, parallel, atol=1e-6)
        np.testing.assert_allclose(
            parallel, model.predict(dataset.features), atol=1e-4
        )

    def test_native_parallel_with_partitioned_model(self, parallel_iris):
        db, dataset = parallel_iris
        model = make_dense_model(16, 3, seed=3)
        publish_model(
            db, "pclf", model, model_table_partitions=PARALLELISM
        )
        runner = NativeModelJoin(db, "pclf")
        columns = list(FEATURE_COLUMNS)
        parallel = runner.predict("iris", "id", columns, parallel=True)
        np.testing.assert_allclose(
            parallel, model.predict(dataset.features), atol=1e-4
        )

    def test_native_parallel_gpu(self, parallel_iris):
        db, dataset = parallel_iris
        model = make_dense_model(8, 2, seed=4)
        publish_model(
            db, "gclf", model, model_table_partitions=PARALLELISM
        )
        gpu = SimulatedGpu()
        runner = NativeModelJoin(db, "gclf", device=gpu)
        parallel = runner.predict(
            "iris", "id", list(FEATURE_COLUMNS), parallel=True
        )
        np.testing.assert_allclose(
            parallel, model.predict(dataset.features), atol=1e-4
        )
        assert gpu.stats.bytes_to_device > 0

    def test_udf_parallel_equals_serial(self, parallel_iris):
        db, dataset = parallel_iris
        model = make_dense_model(8, 2, seed=5)
        runner = UdfModelJoin(db, model, name="par_udf")
        columns = list(FEATURE_COLUMNS)
        serial = runner.predict("iris", "id", columns)
        parallel = runner.predict("iris", "id", columns, parallel=True)
        np.testing.assert_allclose(serial, parallel, atol=1e-6)

    def test_model_join_sql_parallel(self, parallel_iris):
        db, dataset = parallel_iris
        model = make_dense_model(8, 2, seed=6)
        publish_model(db, "sqlclf", model)
        sql = (
            "SELECT id, prediction_0 FROM iris MODEL JOIN sqlclf "
            "USING (sepal_length, sepal_width, petal_length, petal_width)"
        )
        serial = sorted(db.execute(sql).rows)
        parallel = sorted(db.execute(sql, parallel=True).rows)
        assert serial == parallel


class TestParallelLstm:
    def test_native_lstm_parallel(self):
        db = repro.connect(parallelism=PARALLELISM)
        series = load_windowed_series_table(
            db, 2_000, num_partitions=PARALLELISM
        )
        _, windows = series.windows()
        model = make_lstm_model(6, seed=7)
        publish_model(
            db, "fc", model, model_table_partitions=PARALLELISM
        )
        runner = NativeModelJoin(db, "fc")
        parallel = runner.predict(
            "sinus_windows", "id", ["x1", "x2", "x3"], parallel=True
        )
        np.testing.assert_allclose(
            parallel, model.predict(windows), atol=1e-4
        )

    def test_ml_to_sql_lstm_parallel(self):
        db = repro.connect(parallelism=PARALLELISM)
        series = load_windowed_series_table(
            db, 1_200, num_partitions=PARALLELISM
        )
        _, windows = series.windows()
        model = make_lstm_model(4, seed=8)
        runner = MlToSqlModelJoin(db, model, model_table="plstm")
        parallel = runner.predict(
            "sinus_windows", "id", ["x1", "x2", "x3"], parallel=True
        )
        np.testing.assert_allclose(
            parallel, model.predict(windows), atol=1e-4
        )
