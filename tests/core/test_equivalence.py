"""The central invariant of the reproduction (DESIGN.md §5):

For any supported model and input, every in-database approach produces
the same predictions as the framework reference ``model.predict``.
Exercised both with fixed architectures and with hypothesis-generated
random ones.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.client.external import ExternalInference
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.ml_to_sql.representation import MlToSqlOptions
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.runtime_api.runner import RuntimeApiModelJoin
from repro.core.udf_integration.inference_udf import UdfModelJoin
from repro.device import SimulatedGpu
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential

FEATURES = ["f0", "f1", "f2", "f3"]


def load_fact(db, features: np.ndarray, names: list[str]):
    columns = ", ".join(f"{name} FLOAT" for name in names)
    db.execute(f"CREATE TABLE fact (id INTEGER, {columns})")
    data = {"id": np.arange(len(features), dtype=np.int64)}
    for position, name in enumerate(names):
        data[name] = features[:, position]
    db.table("fact").append_columns(**data)


def all_approach_predictions(db, model, names, gpu=False):
    """Predictions of every approach, keyed by approach name."""
    results = {}
    mlsql = MlToSqlModelJoin(db, model, model_table="eq_model")
    results["ml_to_sql"] = mlsql.predict("fact", "id", names)
    publish_model(db, "eq", model, replace=True)
    device = SimulatedGpu() if gpu else None
    native = NativeModelJoin(db, "eq", device=device)
    results["native"] = native.predict("fact", "id", names)
    capi = RuntimeApiModelJoin(db, model, device=device)
    results["runtime_api"] = capi.predict("fact", "id", names)
    udf = UdfModelJoin(db, model, name="eq_udf")
    results["udf"] = udf.predict("fact", "id", names)
    external = ExternalInference(db, model, device=device)
    results["external"] = external.run("fact", "id", names).predictions
    return results


class TestFixedArchitectures:
    def test_dense_all_approaches_match(self, cdb, small_dense_model):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(257, 4)).astype(np.float32)
        load_fact(cdb, features, FEATURES)
        reference = small_dense_model.predict(features)
        for name, predictions in all_approach_predictions(
            cdb, small_dense_model, FEATURES
        ).items():
            np.testing.assert_allclose(
                predictions, reference, atol=1e-4, err_msg=name
            )

    def test_lstm_all_approaches_match(self, cdb, small_lstm_model):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(130, 3)).astype(np.float32)
        names = ["x1", "x2", "x3"]
        load_fact(cdb, features, names)
        reference = small_lstm_model.predict(features)
        for name, predictions in all_approach_predictions(
            cdb, small_lstm_model, names
        ).items():
            np.testing.assert_allclose(
                predictions, reference, atol=1e-4, err_msg=name
            )

    def test_gpu_variants_match(self, cdb, small_dense_model):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(64, 4)).astype(np.float32)
        load_fact(cdb, features, FEATURES)
        reference = small_dense_model.predict(features)
        results = all_approach_predictions(
            cdb, small_dense_model, FEATURES, gpu=True
        )
        for name in ("native", "runtime_api", "external"):
            np.testing.assert_allclose(
                results[name], reference, atol=1e-4, err_msg=name
            )

    def test_multi_output_dense(self, cdb):
        model = Sequential(
            [Dense(5, "relu"), Dense(3, "sigmoid")], input_width=4, seed=6
        )
        rng = np.random.default_rng(3)
        features = rng.normal(size=(40, 4)).astype(np.float32)
        load_fact(cdb, features, FEATURES)
        reference = model.predict(features)
        results = all_approach_predictions(cdb, model, FEATURES)
        for name, predictions in results.items():
            assert predictions.shape == (40, 3), name
            np.testing.assert_allclose(
                predictions, reference, atol=1e-4, err_msg=name
            )

    def test_classic_node_scheme_matches(self, cdb, small_dense_model):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(50, 4)).astype(np.float32)
        load_fact(cdb, features, FEATURES)
        reference = small_dense_model.predict(features)
        runner = MlToSqlModelJoin(
            cdb,
            small_dense_model,
            options=MlToSqlOptions(optimized_node_ids=False),
            model_table="classic_model",
        )
        predictions = runner.predict("fact", "id", FEATURES)
        np.testing.assert_allclose(predictions, reference, atol=1e-4)

    def test_portable_sql_matches(self, cdb):
        model = Sequential(
            [Dense(4, "sigmoid"), Dense(1, "tanh")], input_width=4, seed=8
        )
        rng = np.random.default_rng(5)
        features = rng.normal(size=(50, 4)).astype(np.float32)
        load_fact(cdb, features, FEATURES)
        runner = MlToSqlModelJoin(
            cdb,
            model,
            options=MlToSqlOptions(native_activation_functions=False),
            model_table="portable_model",
        )
        predictions = runner.predict("fact", "id", FEATURES)
        np.testing.assert_allclose(
            predictions, model.predict(features), atol=1e-4
        )


@st.composite
def random_dense_model(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = [
        draw(st.integers(min_value=1, max_value=6)) for _ in range(depth)
    ]
    activations = [
        draw(st.sampled_from(["linear", "relu", "sigmoid", "tanh"]))
        for _ in range(depth + 1)
    ]
    input_width = draw(st.integers(min_value=1, max_value=5))
    outputs = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    layers = [
        Dense(width, activation)
        for width, activation in zip(widths, activations)
    ]
    layers.append(Dense(outputs, activations[-1]))
    return Sequential(layers, input_width=input_width, seed=seed)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(model=random_dense_model(), data_seed=st.integers(0, 1000))
def test_random_dense_equivalence(model, data_seed):
    db = repro.connect()
    names = [f"c{i}" for i in range(model.input_width)]
    rng = np.random.default_rng(data_seed)
    features = rng.normal(size=(37, model.input_width)).astype(np.float32)
    load_fact(db, features, names)
    reference = model.predict(features)

    mlsql = MlToSqlModelJoin(db, model, model_table="rand_model")
    np.testing.assert_allclose(
        mlsql.predict("fact", "id", names), reference, atol=2e-4
    )
    publish_model(db, "rand", model)
    native = NativeModelJoin(db, "rand")
    np.testing.assert_allclose(
        native.predict("fact", "id", names), reference, atol=2e-4
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    units=st.integers(min_value=1, max_value=5),
    steps=st.integers(min_value=1, max_value=4),
    seed=st.integers(0, 1000),
)
def test_random_lstm_equivalence(units, steps, seed):
    db = repro.connect()
    model = Sequential(
        [Lstm(units), Dense(1)], input_width=steps, seed=seed
    )
    names = [f"x{i}" for i in range(1, steps + 1)]
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(29, steps)).astype(np.float32)
    load_fact(db, features, names)
    reference = model.predict(features)

    mlsql = MlToSqlModelJoin(db, model, model_table="rand_lstm")
    np.testing.assert_allclose(
        mlsql.predict("fact", "id", names), reference, atol=2e-4
    )
    publish_model(db, "randl", model)
    native = NativeModelJoin(db, "randl")
    np.testing.assert_allclose(
        native.predict("fact", "id", names), reference, atol=2e-4
    )
