"""Runtime-API operator/runner and UDF integration tests."""

import numpy as np
import pytest

from repro.core.runtime_api.conversion import (
    columnar_to_row_major,
    row_major_to_columnar,
)
from repro.core.runtime_api.runner import RuntimeApiModelJoin
from repro.core.udf_integration.inference_udf import (
    UdfModelJoin,
    make_inference_udf,
)
from repro.db.engine import Database
from repro.device import SimulatedGpu
from repro.errors import ModelJoinError, UnsupportedModelError
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.runtime import TensorBuffer


@pytest.fixture
def fact_db() -> tuple[Database, np.ndarray]:
    db = Database()
    db.execute("CREATE TABLE fact (id INTEGER, a FLOAT, b FLOAT)")
    rng = np.random.default_rng(3)
    x = rng.normal(size=(200, 2)).astype(np.float32)
    db.table("fact").append_columns(
        id=np.arange(200, dtype=np.int64), a=x[:, 0], b=x[:, 1]
    )
    return db, x


@pytest.fixture
def model() -> Sequential:
    return Sequential(
        [Dense(5, "relu"), Dense(1, "sigmoid")], input_width=2, seed=13
    )


class TestConversion:
    def test_roundtrip(self):
        columns = [
            np.arange(4, dtype=np.float32),
            np.arange(4, 8, dtype=np.float32),
        ]
        buffer = columnar_to_row_major(columns)
        assert buffer.array.flags["C_CONTIGUOUS"]
        assert buffer.shape == (4, 2)
        back = row_major_to_columnar(buffer)
        for original, restored in zip(columns, back):
            np.testing.assert_array_equal(original, restored)

    def test_interleaving_is_row_major(self):
        columns = [
            np.array([1, 2], dtype=np.float32),
            np.array([3, 4], dtype=np.float32),
        ]
        buffer = columnar_to_row_major(columns)
        assert buffer.array.ravel().tolist() == [1, 3, 2, 4]

    def test_ragged_rejected(self):
        with pytest.raises(ModelJoinError):
            columnar_to_row_major(
                [np.zeros(2, np.float32), np.zeros(3, np.float32)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ModelJoinError):
            columnar_to_row_major([])

    def test_runtime_rejects_columnar_layout_directly(self):
        # The conversion exists because the runtime refuses non-row-major
        # input: handing it a transposed (column-major) view must fail.
        from repro.errors import ModelError

        matrix = np.zeros((4, 2), dtype=np.float32)
        with pytest.raises(ModelError):
            TensorBuffer(matrix.T)


class TestRuntimeApiRunner:
    def test_predictions_match(self, fact_db, model):
        db, x = fact_db
        runner = RuntimeApiModelJoin(db, model)
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )

    def test_phases_recorded(self, fact_db, model):
        db, _ = fact_db
        runner = RuntimeApiModelJoin(db, model)
        runner.predict("fact", "id", ["a", "b"])
        phases = runner.last_profile.stopwatch.phases
        assert "runtime-load" in phases
        assert "runtime-convert" in phases
        assert "runtime-infer" in phases

    def test_gpu_variant(self, fact_db, model):
        db, x = fact_db
        gpu = SimulatedGpu()
        runner = RuntimeApiModelJoin(db, model, device=gpu)
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-5
        )
        assert gpu.stats.modeled_seconds > 0

    def test_memory_accounted_and_released(self, fact_db, model):
        db, _ = fact_db
        runner = RuntimeApiModelJoin(db, model)
        _, context = runner.execute("fact", ["a", "b"])
        assert context.memory.peak_bytes > 0
        assert context.memory.current_bytes == 0

    def test_wrong_input_columns(self, fact_db, model):
        db, _ = fact_db
        runner = RuntimeApiModelJoin(db, model)
        with pytest.raises(ModelJoinError):
            runner.predict("fact", "id", ["a"])


class TestUdfIntegration:
    def test_udf_predictions_match(self, fact_db, model):
        db, x = fact_db
        runner = UdfModelJoin(db, model, name="p1")
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-4
        )

    def test_query_text(self, fact_db, model):
        db, _ = fact_db
        runner = UdfModelJoin(db, model, name="p2")
        sql = runner.query("fact", "id", ["a", "b"])
        assert sql == (
            "SELECT id, p2(a, b) AS prediction_0 FROM fact"
        )

    def test_vectorized_called_once_per_vector(self, fact_db, model):
        db, _ = fact_db
        runner = UdfModelJoin(db, model, name="p3")
        runner.predict("fact", "id", ["a", "b"])
        assert runner.udfs[0].statistics.calls == 1  # 200 rows, 1 vector
        assert runner.udfs[0].statistics.rows == 200

    def test_per_tuple_called_once_per_row(self, fact_db, model):
        db, x = fact_db
        runner = UdfModelJoin(db, model, name="p4", vectorized=False)
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-4
        )
        assert runner.udfs[0].statistics.calls == 200

    def test_multi_output_registers_one_udf_each(self, fact_db):
        db, x = fact_db
        model = Sequential([Dense(3, "tanh")], input_width=2, seed=1)
        runner = UdfModelJoin(db, model, name="multi")
        assert [udf.name for udf in runner.udfs] == [
            "multi_0",
            "multi_1",
            "multi_2",
        ]
        predictions = runner.predict("fact", "id", ["a", "b"])
        np.testing.assert_allclose(
            predictions, model.predict(x), atol=1e-4
        )

    def test_make_udf_output_index_validated(self, model):
        with pytest.raises(UnsupportedModelError):
            make_inference_udf(model, output_index=5)

    def test_udf_loads_model_from_serialized_form(self, model):
        udf = make_inference_udf(model, name="fresh")
        # Mutating the original model after UDF creation must not
        # change the UDF's predictions (it captured the saved form).
        x = np.ones((3, 2), dtype=np.float32)
        before = udf(
            np.ones(3, dtype=np.float32), np.ones(3, dtype=np.float32)
        )
        model.layers[0].kernel += 100.0
        after = udf(
            np.ones(3, dtype=np.float32), np.ones(3, dtype=np.float32)
        )
        np.testing.assert_array_equal(before, after)
        del x
