"""Cost model, decision-tree-to-SQL, and SQL encodings."""

import numpy as np
import pytest

from repro.core.cost.model import (
    InferenceCostModel,
    flops_per_tuple_of_metadata,
    flops_per_tuple_of_model,
)
from repro.core.encoding import (
    min_max_encode_query,
    min_max_expression,
    one_hot_expressions,
    window_self_join_query,
)
from repro.core.registry import model_metadata
from repro.core.trees import (
    DecisionTreeRegressor,
    tree_inference_query,
    tree_to_sql,
)
from repro.db.engine import Database
from repro.errors import ModelError, ModelJoinError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


class TestCostModel:
    def test_flops_grow_with_width(self):
        small = Sequential([Dense(8), Dense(1)], input_width=4)
        large = Sequential([Dense(64), Dense(1)], input_width=4)
        assert flops_per_tuple_of_model(large) > flops_per_tuple_of_model(
            small
        )

    def test_metadata_and_model_agree_for_dense(self):
        model = Sequential(
            [Dense(16, "relu"), Dense(1)], input_width=4, seed=0
        )
        metadata = model_metadata("m", "t", model)
        assert flops_per_tuple_of_metadata(metadata) == pytest.approx(
            flops_per_tuple_of_model(model)
        )

    def test_metadata_and_model_agree_for_lstm(self):
        model = Sequential([Lstm(8), Dense(1)], input_width=3, seed=0)
        metadata = model_metadata("m", "t", model)
        assert flops_per_tuple_of_metadata(metadata) == pytest.approx(
            flops_per_tuple_of_model(model)
        )

    def test_calibrated_prediction_recovers_linear_cost(self):
        cost_model = InferenceCostModel()
        # Synthetic ground truth: 2e-9 s per flop + 1e-6 s per tuple.
        observations = [
            (tuples, flops, 2e-9 * tuples * flops + 1e-6 * tuples)
            for tuples in (1000, 5000, 20000)
            for flops in (100.0, 1000.0)
        ]
        cost_model.calibrate(observations)
        model = Sequential([Dense(10), Dense(1)], input_width=4)
        flops = flops_per_tuple_of_model(model)
        estimate = cost_model.estimate(model, 10_000)
        expected = 2e-9 * 10_000 * flops + 1e-6 * 10_000
        assert estimate.predicted_seconds == pytest.approx(
            expected, rel=1e-3
        )
        assert estimate.total_flops == flops * 10_000

    def test_uncalibrated_has_no_prediction(self):
        model = Sequential([Dense(2)], input_width=2)
        estimate = InferenceCostModel().estimate(model, 100)
        assert estimate.predicted_seconds is None

    def test_calibration_needs_observations(self):
        with pytest.raises(ModelJoinError):
            InferenceCostModel().calibrate([(1, 1.0, 1.0)])


class TestDecisionTree:
    def _data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(x[:, 0] > 0.2, 5.0, np.where(x[:, 1] > 0, 2.0, -1.0))
        return x, y

    def test_fit_predict_partitions_space(self):
        x, y = self._data()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        predictions = tree.predict(x)
        assert np.abs(predictions - y).mean() < 0.5

    def test_depth_limited(self):
        x, y = self._data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.depth() <= 2
        assert tree.leaf_count() <= 4

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_sql_translation_matches_python(self):
        x, y = self._data()
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        db = Database()
        db.execute("CREATE TABLE pts (id INTEGER, a DOUBLE, b DOUBLE)")
        db.table("pts").append_columns(
            id=np.arange(len(x), dtype=np.int64),
            a=x[:, 0],
            b=x[:, 1],
        )
        sql = tree_inference_query(tree, "pts", "id", ["a", "b"])
        result = db.execute(sql + " ORDER BY id")
        np.testing.assert_allclose(
            result.column("prediction"), tree.predict(x), atol=1e-9
        )

    def test_sql_feature_count_checked(self):
        x, y = self._data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        with pytest.raises(ModelError):
            tree_to_sql(tree, ["only_one"])

    def test_single_leaf_tree_is_constant(self):
        tree = DecisionTreeRegressor(max_depth=1, min_samples=100).fit(
            np.zeros((10, 1)), np.full(10, 3.5)
        )
        assert tree_to_sql(tree, ["x"]) == "3.5"


class TestEncoding:
    def test_min_max_expression(self):
        db = Database()
        db.execute("CREATE TABLE v (id INTEGER, x FLOAT)")
        db.execute(
            "INSERT INTO v VALUES (1, 10.0), (2, 20.0), (3, 30.0)"
        )
        sql = min_max_encode_query(db, "v", "id", ["x"])
        result = db.execute(sql + " ORDER BY id")
        np.testing.assert_allclose(
            result.column("x_scaled"), [0.0, 0.5, 1.0], atol=1e-6
        )

    def test_min_max_constant_column(self):
        assert min_max_expression("x", 5.0, 5.0) == "0.0"

    def test_one_hot(self):
        db = Database()
        db.execute("CREATE TABLE c (id INTEGER, cat INTEGER)")
        db.execute("INSERT INTO c VALUES (1, 0), (2, 1), (3, 2)")
        expressions = one_hot_expressions("cat", [0, 1, 2])
        sql = f"SELECT id, {', '.join(expressions)} FROM c ORDER BY id"
        result = db.execute(sql)
        matrix = np.column_stack(
            [result.column(f"cat_is_{v}") for v in (0, 1, 2)]
        )
        np.testing.assert_array_equal(matrix, np.eye(3))

    def test_window_self_join(self):
        db = Database()
        db.execute("CREATE TABLE series (id INTEGER, value FLOAT)")
        values = [float(v) for v in range(10)]
        db.table("series").append_columns(
            id=np.arange(10, dtype=np.int64),
            value=np.array(values, dtype=np.float32),
        )
        sql = window_self_join_query("series", "id", "value", 3)
        result = db.execute(sql + " ORDER BY id")
        assert result.row_count == 8
        first = result.rows[0]
        # id of the *last* window element, values oldest-first
        assert first == (2, 0.0, 1.0, 2.0)

    def test_window_single_step(self):
        sql = window_self_join_query("s", "id", "v", 1)
        assert "WHERE" not in sql

    def test_window_requires_positive_steps(self):
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            window_self_join_query("s", "id", "v", 0)
