"""Workload generators: Iris, sinus series, model grid."""

import numpy as np
import pytest

import repro
from repro.workloads.iris import FEATURE_COLUMNS, IrisDataset, load_iris_table
from repro.workloads.models import (
    DENSE_GRID,
    LSTM_WIDTHS,
    make_dense_model,
    make_lstm_model,
    parameter_count_formula,
)
from repro.workloads.timeseries import (
    SinusSeries,
    load_series_table,
    load_windowed_series_table,
    windowed_view_query,
)


class TestIris:
    def test_deterministic(self):
        a = IrisDataset.generate(seed=1)
        b = IrisDataset.generate(seed=1)
        np.testing.assert_array_equal(a.features, b.features)

    def test_class_balance(self):
        dataset = IrisDataset.generate(rows=150)
        counts = np.bincount(dataset.labels)
        assert counts.tolist() == [50, 50, 50]

    def test_replication(self):
        dataset = IrisDataset.generate().replicated(400)
        assert len(dataset) == 400
        np.testing.assert_array_equal(
            dataset.features[:150], dataset.features[150:300]
        )

    def test_classes_are_separable_enough(self):
        # Setosa's petal length is far from virginica's — the synthetic
        # clusters must preserve that structure for the examples.
        dataset = IrisDataset.generate(rows=300, seed=0)
        setosa = dataset.features[dataset.labels == 0, 2].mean()
        virginica = dataset.features[dataset.labels == 2, 2].mean()
        assert virginica - setosa > 3.0

    def test_load_iris_table(self):
        db = repro.connect()
        dataset = load_iris_table(db, 777, num_partitions=3)
        table = db.table("iris")
        assert table.row_count == 777
        assert table.num_partitions == 3
        assert table.sort_key == ("id",)
        assert len(dataset) == 777
        result = db.execute("SELECT id, sepal_length FROM iris ORDER BY id")
        assert result.row_count == 777
        assert set(FEATURE_COLUMNS) < set(table.schema.names)

    def test_load_replace(self):
        db = repro.connect()
        load_iris_table(db, 10)
        load_iris_table(db, 20, replace=True)
        assert db.table("iris").row_count == 20


class TestSinusSeries:
    def test_windows_shape_and_alignment(self):
        series = SinusSeries.generate(rows=20, time_steps=3, noise=0.0)
        ids, windows = series.windows()
        assert windows.shape == (18, 3)
        assert ids[0] == 2
        np.testing.assert_allclose(windows[0], series.values[:3])

    def test_windows_too_short_series(self):
        series = SinusSeries.generate(rows=2, time_steps=5)
        ids, windows = series.windows()
        assert len(ids) == 0 and windows.shape == (0, 5)

    def test_targets_are_next_values(self):
        series = SinusSeries.generate(rows=10, time_steps=3, noise=0.0)
        targets = series.targets()
        np.testing.assert_allclose(targets, series.values[3:])

    def test_windowed_table_matches_sql_self_join(self):
        db = repro.connect()
        raw = load_series_table(db, 50, time_steps=3, seed=9)
        load_windowed_series_table(
            db, 48, table_name="w", time_steps=3, seed=9
        )
        del raw
        view = db.execute(
            windowed_view_query("sinus", 3) + " ORDER BY id"
        )
        table = db.execute("SELECT * FROM w ORDER BY id")
        assert view.rows == pytest.approx(table.rows)

    def test_windowed_loader_row_count(self):
        db = repro.connect()
        load_windowed_series_table(db, 100, time_steps=4)
        assert db.table("sinus_windows").row_count == 100
        assert db.table("sinus_windows").schema.names == (
            "id",
            "x1",
            "x2",
            "x3",
            "x4",
        )


class TestModelFactory:
    def test_paper_grid(self):
        assert len(DENSE_GRID) == 9
        assert LSTM_WIDTHS == (32, 128, 512)

    def test_dense_structure(self):
        model = make_dense_model(16, 3)
        assert len(model.layers) == 4  # 3 hidden + output
        assert all(layer.units == 16 for layer in model.layers[:3])
        assert model.layers[-1].units == 1
        assert model.input_width == 4

    def test_lstm_structure(self):
        model = make_lstm_model(8, time_steps=3)
        assert model.has_lstm
        assert model.time_steps == 3
        assert model.layers[0].units == 8

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            make_dense_model(0, 2)
        with pytest.raises(ValueError):
            make_lstm_model(4, time_steps=0)

    def test_parameter_formula_matches_paper_example(self):
        # "the model with width 512 and depth 8 having
        #  4*512 + 7*512^2 + 512 ~= 1.8e6 parameters"
        assert parameter_count_formula(512, 8) == (
            4 * 512 + 7 * 512 * 512 + 512
        )

    def test_formula_tracks_actual_weight_count(self):
        model = make_dense_model(32, 4)
        weights_only = sum(
            layer.kernel.size for layer in model.layers
        )
        assert parameter_count_formula(32, 4) == weights_only
