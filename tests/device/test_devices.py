import numpy as np
import pytest

from repro.device import GpuCostModel, HostDevice, SimulatedGpu
from repro.device.base import DeviceWindow
from repro.errors import DeviceError


class TestHostDevice:
    def test_gemm(self):
        device = HostDevice()
        a = np.ones((2, 3), dtype=np.float32)
        b = np.ones((3, 4), dtype=np.float32)
        out = device.gemm(a, b)
        assert out.shape == (2, 4)
        assert (out == 3.0).all()
        assert device.stats.flops == 2 * 2 * 3 * 4

    def test_gemm_accumulate(self):
        device = HostDevice()
        a = np.eye(2, dtype=np.float32)
        c = np.full((2, 2), 10.0, dtype=np.float32)
        out = device.gemm(a, a, accumulate=c)
        assert (np.diag(out) == 11.0).all()

    def test_gemm_shape_mismatch(self):
        device = HostDevice()
        with pytest.raises(DeviceError):
            device.gemm(
                np.ones((2, 3), np.float32), np.ones((2, 3), np.float32)
            )

    def test_float64_rejected(self):
        device = HostDevice()
        with pytest.raises(DeviceError):
            device.gemm(np.ones((1, 1)), np.ones((1, 1)))

    def test_elementwise_and_activation(self):
        device = HostDevice()
        a = np.array([-1.0, 2.0], dtype=np.float32)
        assert device.multiply(a, a).tolist() == [1.0, 4.0]
        assert device.add(a, a).tolist() == [-2.0, 4.0]
        assert device.activation("relu", a).tolist() == [0.0, 2.0]
        assert device.stats.kernel_launches == 3

    def test_transfers_are_identity(self):
        device = HostDevice()
        a = np.ones(3, dtype=np.float32)
        assert device.to_device(a) is a
        assert device.to_host(a) is a


class TestGpuCostModel:
    def test_gemm_cost_scales_with_flops(self):
        model = GpuCostModel()
        small = model.gemm_seconds(10, 10, 10)
        large = model.gemm_seconds(1000, 1000, 1000)
        assert large > small

    def test_launch_latency_floor(self):
        model = GpuCostModel()
        assert model.gemm_seconds(1, 1, 1) >= model.kernel_launch_seconds

    def test_transfer_latency_floor(self):
        model = GpuCostModel()
        assert model.transfer_seconds(0) == model.transfer_latency_seconds


class TestSimulatedGpu:
    def test_results_exact_vs_host(self):
        gpu, cpu = SimulatedGpu(), HostDevice()
        a = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        np.testing.assert_array_equal(gpu.gemm(a, a), cpu.gemm(a, a))

    def test_transfer_produces_distinct_buffer(self):
        gpu = SimulatedGpu()
        a = np.ones(4, dtype=np.float32)
        on_device = gpu.to_device(a)
        assert on_device is not a
        a[0] = 99.0
        assert on_device[0] == 1.0

    def test_accounting_accumulates(self):
        gpu = SimulatedGpu()
        a = np.ones((16, 16), dtype=np.float32)
        on_device = gpu.to_device(a)
        gpu.gemm(on_device, on_device)
        gpu.activation("tanh", on_device)
        stats = gpu.stats
        assert stats.bytes_to_device == a.nbytes
        assert stats.kernel_launches == 2
        assert stats.modeled_kernel_seconds > 0
        assert stats.host_kernel_seconds > 0

    def test_large_model_gpu_beats_small(self):
        """The crossover: modeled GEMM time dominated by launch cost
        for tiny matrices, by throughput for big ones."""
        model = GpuCostModel()
        tiny = model.gemm_seconds(32, 4, 32)
        assert tiny == pytest.approx(
            model.kernel_launch_seconds, rel=0.5
        )
        big = model.gemm_seconds(1024, 512, 512)
        assert big > 10 * model.kernel_launch_seconds

    def test_device_window_swaps_kernel_time(self):
        gpu = SimulatedGpu()
        a = np.ones((64, 64), dtype=np.float32)
        with DeviceWindow(gpu) as window:
            for _ in range(10):
                gpu.gemm(a, a)
        assert window.wall_seconds > 0
        # modeled time for 10 tiny gemms ~ 10 launches + small compute
        assert window.seconds >= 0

    def test_device_window_host_is_wall(self):
        cpu = HostDevice()
        with DeviceWindow(cpu) as window:
            sum(range(10000))
        assert window.seconds == pytest.approx(window.wall_seconds)

    def test_stats_reset_and_merge(self):
        gpu = SimulatedGpu()
        gpu.to_device(np.ones(4, dtype=np.float32))
        other = SimulatedGpu()
        other.to_device(np.ones(4, dtype=np.float32))
        gpu.stats.merge(other.stats)
        assert gpu.stats.bytes_to_device == 32
        gpu.stats.reset()
        assert gpu.stats.bytes_to_device == 0
