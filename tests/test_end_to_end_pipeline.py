"""One grand integration test: the paper's whole story in a single flow.

Raw series arrives → windowed in SQL (§4 self-join) → materialized via
INSERT...SELECT → LSTM published to the catalog (§5.5) → scored by the
native MODEL JOIN nested inside an aggregation (§5.1 "arbitrary
queries") → the same scores recomputed with ML-To-SQL and the external
baseline → all agree → EXPLAIN ANALYZE confirms early pruning.
"""

import numpy as np
import pytest

import repro
from repro.core.client.external import ExternalInference
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.registry import publish_model
from repro.core.validation import verify_model_table
from repro.workloads.models import make_lstm_model
from repro.workloads.timeseries import (
    load_series_table,
    windowed_view_query,
)

STEPS = 3


@pytest.fixture(scope="module")
def pipeline():
    db = repro.connect()
    series = load_series_table(db, rows=600, time_steps=STEPS, seed=3)
    db.execute(
        "CREATE TABLE windows (id INTEGER, x1 FLOAT, x2 FLOAT, x3 FLOAT)"
    )
    db.execute(
        "INSERT INTO windows " + windowed_view_query("sinus", STEPS)
    )
    model = make_lstm_model(6, time_steps=STEPS, seed=11)
    publish_model(db, "forecaster", model)
    return db, series, model


class TestEndToEnd:
    def test_windowing_materialized(self, pipeline):
        db, series, _ = pipeline
        ids, windows = series.windows()
        assert db.table("windows").row_count == len(ids)
        stored = db.execute(
            "SELECT id, x1, x2, x3 FROM windows ORDER BY id"
        )
        np.testing.assert_allclose(
            np.column_stack(
                [stored.column(f"x{s}") for s in range(1, STEPS + 1)]
            ),
            windows,
            atol=1e-6,
        )

    def test_catalog_is_sane(self, pipeline):
        db, _, _ = pipeline
        assert verify_model_table(db, "forecaster").ok

    def test_three_paths_agree(self, pipeline):
        db, series, model = pipeline
        _, windows = series.windows()
        reference = model.predict(windows)

        native = db.execute(
            "SELECT id, prediction_0 FROM windows "
            "MODEL JOIN forecaster USING (x1, x2, x3) ORDER BY id"
        ).column("prediction_0")
        np.testing.assert_allclose(
            native, reference[:, 0], atol=1e-4
        )

        mlsql = MlToSqlModelJoin(db, model, model_table="fc_sql")
        np.testing.assert_allclose(
            mlsql.predict("windows", "id", ["x1", "x2", "x3"]),
            reference,
            atol=1e-4,
        )

        external = ExternalInference(db, model)
        report = external.run("windows", "id", ["x1", "x2", "x3"])
        np.testing.assert_allclose(
            report.predictions, reference, atol=1e-4
        )

    def test_inference_nested_in_aggregation(self, pipeline):
        db, series, model = pipeline
        _, windows = series.windows()
        reference = model.predict(windows)[:, 0]
        result = db.execute(
            "SELECT b.bucket AS bucket, AVG(b.prediction_0) AS score, "
            "COUNT(*) AS n FROM "
            "(SELECT id - MOD(id, 100) AS bucket, prediction_0 "
            " FROM windows MODEL JOIN forecaster USING (x1, x2, x3)) AS b "
            "GROUP BY b.bucket ORDER BY bucket"
        )
        ids, _ = series.windows()
        buckets = ids - np.mod(ids, 100)
        for bucket, score, count in result.rows:
            mask = buckets == bucket
            assert count == int(mask.sum())
            assert score == pytest.approx(
                float(reference[mask].mean()), abs=1e-4
            )

    def test_early_pruning_visible_in_analyze(self, pipeline):
        db, _, _ = pipeline
        plan, result = db.explain_analyze(
            "SELECT w.id, prediction_0 FROM windows AS w "
            "MODEL JOIN forecaster USING (x1, x2, x3) "
            "WHERE w.id < 52"
        )
        assert result.row_count == 50  # window ids start at STEPS - 1
        modeljoin_line = next(
            line for line in plan.splitlines() if "ModelJoin" in line
        )
        assert "[rows: 50]" in modeljoin_line  # pruned before inference
