"""GRU layer: semantics, runtime-API support, approach boundaries.

The GRU exists to make Table 2's generalizability column concrete:
the runtime-backed approaches (TF C-API, UDF, TF Python) support a new
layer type for free; the relational representation and the native
operator do not (by design — reimplementation does not amortize,
paper Section 6.3).
"""

import numpy as np
import pytest

from repro.errors import ModelGraphError, UnsupportedModelError
from repro.nn.layers import Dense, Gru
from repro.nn.model import Sequential
from repro.nn.runtime import InferenceSession, TensorBuffer


class TestGruSemantics:
    def _tiny_gru(self) -> Gru:
        layer = Gru(1)
        layer.set_weights(
            kernel=np.full((1, 3), 0.5),
            recurrent_kernel=np.full((1, 3), 0.25),
            bias=np.zeros(3),
        )
        return layer

    def test_single_step_matches_manual(self):
        layer = self._tiny_gru()
        out = layer.forward(np.array([[[1.0]]], dtype=np.float32))

        def sigmoid(v):
            return 1.0 / (1.0 + np.exp(-v))

        # h=0: z = sigmoid(0.5), candidate = tanh(0.5 + r*0)
        z = sigmoid(0.5)
        candidate = np.tanh(0.5)
        expected = z * 0.0 + (1 - z) * candidate
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-5)

    def test_update_gate_interpolates(self):
        # With kernel forcing z ~ 1 the state barely moves.
        layer = Gru(1)
        layer.set_weights(
            kernel=np.array([[100.0, 0.0, 1.0]]),
            recurrent_kernel=np.zeros((1, 3)),
            bias=np.zeros(3),
        )
        out = layer.forward(np.ones((1, 4, 1), dtype=np.float32))
        assert abs(float(out[0, 0])) < 1e-3

    def test_batch_independence(self):
        layer = Gru(4)
        layer.build(1, np.random.default_rng(0))
        batch = np.random.default_rng(1).normal(size=(6, 3, 1)).astype(
            np.float32
        )
        whole = layer.forward(batch)
        single = np.concatenate(
            [layer.forward(batch[i : i + 1]) for i in range(6)]
        )
        np.testing.assert_allclose(whole, single, atol=1e-6)

    def test_weight_validation(self):
        layer = Gru(2)
        with pytest.raises(ModelGraphError):
            layer.set_weights(np.zeros((1, 5)), np.zeros((2, 6)), np.zeros(6))
        with pytest.raises(ModelGraphError):
            layer.set_weights(np.zeros((1, 6)), np.zeros((3, 6)), np.zeros(6))
        with pytest.raises(ModelGraphError):
            layer.set_weights(np.zeros((1, 6)), np.zeros((2, 6)), np.zeros(5))

    def test_parameter_count(self):
        layer = Gru(4)
        layer.build(2, np.random.default_rng(0))
        assert layer.parameter_count() == 2 * 12 + 4 * 12 + 12


class TestGruInModel:
    def test_gru_first_model_predicts(self):
        model = Sequential([Gru(6), Dense(1)], input_width=4, seed=3)
        assert model.has_recurrent_first
        assert not model.has_lstm
        assert model.time_steps == 4
        x = np.random.default_rng(2).normal(size=(9, 4)).astype(np.float32)
        assert model.predict(x).shape == (9, 1)

    def test_gru_not_first_rejected(self):
        with pytest.raises(ModelGraphError, match="recurrent"):
            Sequential([Dense(3), Gru(2)], input_width=3)

    def test_serialization_roundtrip(self):
        from repro.nn.serialization import model_from_dict, model_to_dict

        model = Sequential([Gru(5), Dense(2)], input_width=3, seed=9)
        clone = model_from_dict(model_to_dict(model))
        x = np.random.default_rng(3).normal(size=(7, 3)).astype(np.float32)
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))


class TestGruAcrossApproaches:
    @pytest.fixture
    def gru_model(self) -> Sequential:
        return Sequential([Gru(5), Dense(1)], input_width=3, seed=8)

    def test_runtime_session_supports_gru(self, gru_model):
        x = np.random.default_rng(4).normal(size=(15, 3)).astype(np.float32)
        session = InferenceSession(gru_model)
        out = session.run(TensorBuffer.from_rows(x)).array
        np.testing.assert_allclose(
            out, gru_model.predict(x), atol=1e-5
        )

    def test_runtime_gpu_supports_gru(self, gru_model):
        from repro.device import SimulatedGpu

        x = np.random.default_rng(5).normal(size=(8, 3)).astype(np.float32)
        session = InferenceSession(gru_model, SimulatedGpu())
        out = session.run(TensorBuffer.from_rows(x)).array
        np.testing.assert_allclose(
            out, gru_model.predict(x), atol=1e-5
        )

    def test_runtime_api_operator_supports_gru(self, gru_model):
        import repro
        from repro.core.runtime_api.runner import RuntimeApiModelJoin

        db = repro.connect()
        db.execute("CREATE TABLE w (id INTEGER, x1 FLOAT, x2 FLOAT, x3 FLOAT)")
        x = np.random.default_rng(6).normal(size=(50, 3)).astype(np.float32)
        db.table("w").append_columns(
            id=np.arange(50), x1=x[:, 0], x2=x[:, 1], x3=x[:, 2]
        )
        runner = RuntimeApiModelJoin(db, gru_model)
        predictions = runner.predict("w", "id", ["x1", "x2", "x3"])
        np.testing.assert_allclose(
            predictions, gru_model.predict(x), atol=1e-5
        )

    def test_udf_supports_gru(self, gru_model):
        import repro
        from repro.core.udf_integration.inference_udf import UdfModelJoin

        db = repro.connect()
        db.execute("CREATE TABLE w (id INTEGER, x1 FLOAT, x2 FLOAT, x3 FLOAT)")
        x = np.random.default_rng(7).normal(size=(40, 3)).astype(np.float32)
        db.table("w").append_columns(
            id=np.arange(40), x1=x[:, 0], x2=x[:, 1], x3=x[:, 2]
        )
        runner = UdfModelJoin(db, gru_model, name="gru_pred")
        predictions = runner.predict("w", "id", ["x1", "x2", "x3"])
        np.testing.assert_allclose(
            predictions, gru_model.predict(x), atol=1e-4
        )

    def test_relational_representation_rejects_gru(self, gru_model):
        from repro.core.ml_to_sql.representation import (
            build_relational_model,
        )

        with pytest.raises(UnsupportedModelError, match="gru"):
            build_relational_model(gru_model)

    def test_publish_model_rejects_gru(self, gru_model):
        import repro
        from repro.core.registry import publish_model

        db = repro.connect()
        with pytest.raises(UnsupportedModelError):
            publish_model(db, "gru_clf", gru_model)
