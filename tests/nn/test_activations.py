import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelGraphError
from repro.nn.activations import get_activation, supported_activations


class TestRegistry:
    def test_all_four_supported(self):
        assert supported_activations() == (
            "linear",
            "relu",
            "sigmoid",
            "tanh",
        )

    def test_case_insensitive(self):
        assert get_activation("ReLU").name == "relu"

    def test_unknown_raises(self):
        with pytest.raises(ModelGraphError):
            get_activation("swish")


class TestForward:
    def test_linear_identity(self):
        values = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        assert get_activation("linear")(values) is values

    def test_relu(self):
        values = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        assert get_activation("relu")(values).tolist() == [0.0, 0.0, 2.0]

    def test_sigmoid_range_and_midpoint(self):
        sigmoid = get_activation("sigmoid")
        assert sigmoid(np.array([0.0], dtype=np.float32))[0] == 0.5
        out = sigmoid(np.array([-1000.0, 1000.0], dtype=np.float32))
        assert np.isfinite(out).all()
        assert 0.0 <= out[0] < 1e-6 and 1 - 1e-6 < out[1] <= 1.0

    def test_tanh_is_numpy_tanh(self):
        values = np.linspace(-2, 2, 5).astype(np.float32)
        np.testing.assert_allclose(
            get_activation("tanh")(values), np.tanh(values)
        )

    @pytest.mark.parametrize("name", ["relu", "sigmoid", "tanh"])
    def test_float32_preserved(self, name):
        values = np.array([0.5], dtype=np.float32)
        assert get_activation(name)(values).dtype == np.float32


@given(
    st.floats(min_value=-5, max_value=5, allow_nan=False),
    st.sampled_from(["relu", "sigmoid", "tanh", "linear"]),
)
def test_derivative_matches_finite_difference(x, name):
    """Property: dy/dx(y(x)) matches the numeric derivative."""
    activation = get_activation(name)
    h = 1e-4
    values = np.array([x - h, x, x + h], dtype=np.float64)
    y = activation(values)
    numeric = (y[2] - y[0]) / (2 * h)
    analytic = activation.derivative(np.array([y[1]]))[0]
    # relu is non-differentiable at 0 — skip the kink neighbourhood.
    if name == "relu" and abs(x) < 2 * h:
        return
    np.testing.assert_allclose(numeric, analytic, rtol=1e-2, atol=1e-3)
