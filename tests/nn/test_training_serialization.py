import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential
from repro.nn.serialization import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.nn.training import accuracy, fit


class TestTraining:
    def test_loss_decreases_on_linear_problem(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 3)).astype(np.float32)
        y = x @ np.array([1.0, -2.0, 0.5], dtype=np.float32) + 0.1
        model = Sequential(
            [Dense(8, "tanh"), Dense(1)], input_width=3, seed=1
        )
        report = fit(model, x, y, epochs=40, learning_rate=0.02)
        assert report.final_loss < report.losses[0] * 0.2

    def test_learns_xor(self):
        x = np.array(
            [[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32
        )
        y = np.array([0.0, 1.0, 1.0, 0.0], dtype=np.float32)
        model = Sequential(
            [Dense(8, "tanh"), Dense(1, "sigmoid")],
            input_width=2,
            seed=3,
        )
        fit(model, x, y, epochs=400, learning_rate=0.3, batch_size=4)
        assert accuracy(model, x, y.astype(np.int64)) == 1.0

    def test_lstm_training_unsupported(self):
        model = Sequential([Lstm(3), Dense(1)], input_width=2)
        with pytest.raises(ModelError, match="dense-only"):
            fit(model, np.zeros((4, 2)), np.zeros(4), epochs=1)

    def test_length_mismatch(self):
        model = Sequential([Dense(1)], input_width=2)
        with pytest.raises(ModelError):
            fit(model, np.zeros((4, 2)), np.zeros(3), epochs=1)

    def test_multiclass_accuracy_argmax(self):
        model = Sequential([Dense(3, "linear")], input_width=3, seed=0)
        model.layers[0].set_weights(np.eye(3), np.zeros(3))
        x = np.eye(3, dtype=np.float32)
        assert accuracy(model, x, np.array([0, 1, 2])) == 1.0


class TestSerialization:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Sequential(
                [Dense(5, "relu"), Dense(2, "sigmoid")],
                input_width=4,
                seed=2,
            ),
            lambda: Sequential(
                [Lstm(4), Dense(1, "tanh")], input_width=3, seed=3
            ),
        ],
    )
    def test_roundtrip_preserves_predictions(self, factory):
        model = factory()
        clone = model_from_dict(model_to_dict(model))
        x = np.random.default_rng(4).normal(
            size=(6, model.input_width)
        ).astype(np.float32)
        np.testing.assert_array_equal(
            model.predict(x), clone.predict(x)
        )

    def test_file_roundtrip(self, tmp_path):
        model = Sequential([Dense(2)], input_width=2, seed=5)
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        x = np.ones((1, 2), dtype=np.float32)
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))

    def test_bad_format_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"format": "other"})

    def test_bad_version_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"format": "repro-model", "version": 2})

    def test_unknown_layer_type_rejected(self):
        with pytest.raises(ModelError, match="conv"):
            model_from_dict(
                {
                    "format": "repro-model",
                    "version": 1,
                    "input_width": 2,
                    "layers": [{"type": "conv", "units": 1}],
                }
            )
