import numpy as np
import pytest

from repro.errors import ModelGraphError
from repro.nn.layers import Dense, Lstm


class TestDense:
    def test_forward_matches_manual(self):
        layer = Dense(2, "linear")
        layer.set_weights(
            np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]]),
            np.array([0.5, -0.5]),
        )
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[1 + 3 + 0.5, 4 + 3 - 0.5]])

    def test_activation_applied(self):
        layer = Dense(1, "relu")
        layer.set_weights(np.array([[-1.0]]), np.array([0.0]))
        out = layer.forward(np.array([[2.0]], dtype=np.float32))
        assert out[0, 0] == 0.0

    def test_build_initializes_shapes(self):
        layer = Dense(7)
        layer.build(3, np.random.default_rng(0))
        assert layer.kernel.shape == (3, 7)
        assert layer.bias.shape == (7,)
        assert layer.parameter_count() == 3 * 7 + 7

    def test_build_is_deterministic(self):
        one, two = Dense(4), Dense(4)
        one.build(3, np.random.default_rng(5))
        two.build(3, np.random.default_rng(5))
        np.testing.assert_array_equal(one.kernel, two.kernel)

    def test_bad_input_shape(self):
        layer = Dense(2)
        layer.build(3, np.random.default_rng(0))
        with pytest.raises(ModelGraphError):
            layer.forward(np.zeros((1, 4), dtype=np.float32))

    def test_inconsistent_weights_rejected(self):
        layer = Dense(2)
        with pytest.raises(ModelGraphError):
            layer.set_weights(np.zeros((3, 2)), np.zeros(5))
        with pytest.raises(ModelGraphError):
            layer.set_weights(np.zeros((3, 4)), np.zeros(4))

    def test_use_before_build(self):
        with pytest.raises(ModelGraphError):
            Dense(2).forward(np.zeros((1, 2), dtype=np.float32))

    def test_zero_units_rejected(self):
        with pytest.raises(ModelGraphError):
            Dense(0)


class TestLstm:
    def _tiny_lstm(self) -> Lstm:
        layer = Lstm(1)
        # All weights to simple constants for hand-checkable recurrence.
        layer.set_weights(
            kernel=np.full((1, 4), 0.5),
            recurrent_kernel=np.full((1, 4), 0.25),
            bias=np.zeros(4),
        )
        return layer

    def test_single_step_matches_manual(self):
        layer = self._tiny_lstm()
        x = np.array([[[1.0]]], dtype=np.float32)
        out = layer.forward(x)

        def sigmoid(v):
            return 1.0 / (1.0 + np.exp(-v))

        z = 0.5  # x*W, no hidden state, no bias
        i, f, c_hat, o = sigmoid(z), sigmoid(z), np.tanh(z), sigmoid(z)
        c = i * c_hat
        h = o * np.tanh(c)
        np.testing.assert_allclose(out[0, 0], h, rtol=1e-5)

    def test_two_steps_use_recurrence(self):
        layer = self._tiny_lstm()
        one_step = layer.forward(np.array([[[1.0]]], dtype=np.float32))
        two_step = layer.forward(
            np.array([[[1.0], [1.0]]], dtype=np.float32)
        )
        assert not np.allclose(one_step, two_step)

    def test_2d_input_means_scalar_series(self):
        layer = Lstm(3)
        layer.build(1, np.random.default_rng(1))
        flat = layer.forward(np.ones((4, 5), dtype=np.float32))
        cube = layer.forward(np.ones((4, 5, 1), dtype=np.float32))
        np.testing.assert_array_equal(flat, cube)

    def test_gate_slices_cover_all_columns(self):
        layer = Lstm(6)
        slices = layer.gate_slices()
        covered = sorted(
            index
            for gate_slice in slices.values()
            for index in range(gate_slice.start, gate_slice.stop)
        )
        assert covered == list(range(24))

    def test_keras_forget_bias_initialized_to_one(self):
        layer = Lstm(4)
        layer.build(1, np.random.default_rng(0))
        assert (layer.bias[4:8] == 1.0).all()

    def test_weight_shape_validation(self):
        layer = Lstm(2)
        with pytest.raises(ModelGraphError):
            layer.set_weights(
                np.zeros((1, 7)), np.zeros((2, 8)), np.zeros(8)
            )
        with pytest.raises(ModelGraphError):
            layer.set_weights(
                np.zeros((1, 8)), np.zeros((3, 8)), np.zeros(8)
            )
        with pytest.raises(ModelGraphError):
            layer.set_weights(
                np.zeros((1, 8)), np.zeros((2, 8)), np.zeros(4)
            )

    def test_batch_independence(self):
        layer = Lstm(4)
        layer.build(1, np.random.default_rng(3))
        rng = np.random.default_rng(4)
        batch = rng.normal(size=(8, 3, 1)).astype(np.float32)
        whole = layer.forward(batch)
        single = np.concatenate(
            [layer.forward(batch[i : i + 1]) for i in range(8)]
        )
        np.testing.assert_allclose(whole, single, atol=1e-6)
