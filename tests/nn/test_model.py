import numpy as np
import pytest

from repro.errors import ModelGraphError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


class TestConstruction:
    def test_layers_chained_by_dims(self):
        model = Sequential([Dense(5), Dense(2)], input_width=3)
        assert model.layers[0].kernel.shape == (3, 5)
        assert model.layers[1].kernel.shape == (5, 2)

    def test_empty_model_rejected(self):
        with pytest.raises(ModelGraphError):
            Sequential([], input_width=2)

    def test_lstm_only_first(self):
        with pytest.raises(ModelGraphError):
            Sequential([Dense(2), Lstm(2)], input_width=2)

    def test_seed_determinism(self):
        a = Sequential([Dense(4), Dense(1)], input_width=2, seed=9)
        b = Sequential([Dense(4), Dense(1)], input_width=2, seed=9)
        x = np.ones((3, 2), dtype=np.float32)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_prebuilt_layer_dim_mismatch(self):
        layer = Dense(3)
        layer.set_weights(np.zeros((7, 3)), np.zeros(3))
        with pytest.raises(ModelGraphError):
            Sequential([layer], input_width=4)

    def test_properties(self):
        model = Sequential([Lstm(6), Dense(1)], input_width=3)
        assert model.has_lstm
        assert model.time_steps == 3
        assert model.output_width == 1
        dense = Sequential([Dense(2)], input_width=4)
        assert not dense.has_lstm
        assert dense.time_steps == 1


class TestPredict:
    def test_dense_matches_manual_chain(self):
        model = Sequential([Dense(4, "relu"), Dense(1)], input_width=3, seed=1)
        x = np.random.default_rng(0).normal(size=(5, 3)).astype(np.float32)
        manual = model.layers[1].forward(model.layers[0].forward(x))
        np.testing.assert_array_equal(model.predict(x), manual)

    def test_1d_input_promoted(self):
        model = Sequential([Dense(1)], input_width=2, seed=0)
        single = model.predict(np.array([1.0, 2.0]))
        assert single.shape == (1, 1)

    def test_wrong_width_rejected(self):
        model = Sequential([Dense(1)], input_width=2)
        with pytest.raises(ModelGraphError):
            model.predict(np.ones((3, 5)))

    def test_lstm_first_consumes_columns_as_steps(self):
        model = Sequential([Lstm(4), Dense(1)], input_width=3, seed=2)
        x = np.random.default_rng(1).normal(size=(6, 3)).astype(np.float32)
        direct = model.layers[0].forward(x.reshape(6, 3, 1))
        expected = model.layers[1].forward(direct)
        np.testing.assert_allclose(model.predict(x), expected, atol=1e-6)

    def test_output_dtype_float32(self):
        model = Sequential([Dense(1)], input_width=2)
        assert model.predict(np.ones((1, 2))).dtype == np.float32


class TestIntrospection:
    def test_parameter_count(self):
        model = Sequential([Dense(4), Dense(1)], input_width=3)
        assert model.parameter_count() == (3 * 4 + 4) + (4 * 1 + 1)

    def test_summary_mentions_layers(self):
        model = Sequential([Dense(4, "relu"), Dense(1)], input_width=3)
        text = model.summary()
        assert "dense" in text
        assert "relu" in text

    def test_dense_layers_helper(self):
        model = Sequential([Lstm(3), Dense(1)], input_width=2)
        assert len(model.dense_layers()) == 1
