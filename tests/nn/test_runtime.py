import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential
from repro.nn.runtime import InferenceSession, MlRuntime, TensorBuffer


@pytest.fixture
def model() -> Sequential:
    return Sequential(
        [Dense(4, "relu"), Dense(1, "sigmoid")], input_width=3, seed=0
    )


class TestTensorBuffer:
    def test_rejects_wrong_dtype(self):
        with pytest.raises(ModelError, match="float32"):
            TensorBuffer(np.zeros((2, 2), dtype=np.float64))

    def test_rejects_non_contiguous(self):
        base = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(ModelError, match="row-major"):
            TensorBuffer(base.T)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ModelError, match="2-D"):
            TensorBuffer(np.zeros(3, dtype=np.float32))

    def test_from_rows_copies_and_conforms(self):
        base = np.zeros((4, 4), dtype=np.float64).T
        buffer = TensorBuffer.from_rows(base)
        assert buffer.array.dtype == np.float32
        assert buffer.array.flags["C_CONTIGUOUS"]


class TestInferenceSession:
    def test_matches_model_predict(self, model):
        x = np.random.default_rng(1).normal(size=(10, 3)).astype(np.float32)
        session = InferenceSession(model)
        out = session.run(TensorBuffer.from_rows(x)).array
        np.testing.assert_allclose(out, model.predict(x), atol=1e-6)

    def test_lstm_session(self):
        model = Sequential([Lstm(4), Dense(1)], input_width=3, seed=1)
        x = np.random.default_rng(2).normal(size=(7, 3)).astype(np.float32)
        session = InferenceSession(model)
        out = session.run(TensorBuffer.from_rows(x)).array
        np.testing.assert_allclose(out, model.predict(x), atol=1e-5)

    def test_wrong_width_rejected(self, model):
        session = InferenceSession(model)
        with pytest.raises(ModelError, match="width"):
            session.run(TensorBuffer.from_rows(np.zeros((2, 5))))

    def test_result_is_row_major(self, model):
        session = InferenceSession(model)
        out = session.run(TensorBuffer.from_rows(np.zeros((2, 3))))
        assert out.array.flags["C_CONTIGUOUS"]


class TestMlRuntime:
    def test_handles_are_opaque_and_unique(self, model):
        runtime = MlRuntime()
        first = runtime.load_model(model)
        second = runtime.load_model(model)
        assert first != second

    def test_run_by_handle(self, model):
        runtime = MlRuntime()
        handle = runtime.load_model(model)
        x = np.ones((2, 3), dtype=np.float32)
        out = runtime.run(handle, TensorBuffer(x)).array
        np.testing.assert_allclose(out, model.predict(x), atol=1e-6)

    def test_unknown_handle(self, model):
        runtime = MlRuntime()
        with pytest.raises(ModelError, match="handle"):
            runtime.run(99, TensorBuffer(np.zeros((1, 3), np.float32)))

    def test_unload_frees_handle(self, model):
        runtime = MlRuntime()
        handle = runtime.load_model(model)
        runtime.unload(handle)
        with pytest.raises(ModelError):
            runtime.run(handle, TensorBuffer(np.zeros((1, 3), np.float32)))

    def test_gpu_device_accounts_transfers(self, model):
        from repro.device import SimulatedGpu

        gpu = SimulatedGpu()
        runtime = MlRuntime(gpu)
        handle = runtime.load_model(model)
        assert gpu.stats.bytes_to_device > 0  # weights uploaded at load
        runtime.run(
            handle, TensorBuffer(np.zeros((4, 3), dtype=np.float32))
        )
        assert gpu.stats.bytes_to_host > 0
        assert gpu.stats.modeled_seconds > 0
