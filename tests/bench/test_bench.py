"""Benchmark harness plumbing (tiny workloads — speed matters here)."""

import numpy as np
import pytest

import repro
from repro.bench.harness import (
    BenchConfig,
    SweepPoint,
    measure_memory_table,
    run_dense_sweep,
    run_lstm_sweep,
)
from repro.bench.reporting import (
    format_bytes,
    format_counter_summary,
    format_qualitative_table,
    format_runtime_series,
    format_seconds,
    points_to_csv,
)
from repro.bench.variants import (
    ALL_VARIANT_NAMES,
    BenchEnvironment,
    make_variant,
)
from repro.errors import ModelJoinError, ReproError
from repro.nn.layers import Dense
from repro.nn.model import Sequential

TINY = BenchConfig(
    preset="tiny",
    fact_rows=(200,),
    dense_grid=((4, 2),),
    lstm_widths=(4,),
    variants=("ModelJoin_CPU", "TF_CAPI_CPU", "UDF", "ML-To-SQL"),
    mltosql_work_cap=10_000_000,
    table3_rows=200,
    verify_predictions=True,
)


class TestConfig:
    def test_presets(self):
        for name in ("smoke", "default", "paper"):
            config = BenchConfig.from_preset(name)
            assert config.preset == name
        with pytest.raises(ReproError):
            BenchConfig.from_preset("nope")

    def test_with_variants(self):
        config = BenchConfig().with_variants(("UDF",))
        assert config.variants == ("UDF",)


class TestVariants:
    def test_all_names_constructible(self):
        for name in ALL_VARIANT_NAMES:
            assert make_variant(name).name == name

    def test_unknown_variant(self):
        with pytest.raises(ModelJoinError):
            make_variant("Quantum")

    def test_variant_run_produces_measurement(self):
        db = repro.connect()
        db.execute("CREATE TABLE f (id INTEGER, a FLOAT, b FLOAT)")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2)).astype(np.float32)
        db.table("f").append_columns(
            id=np.arange(100), a=x[:, 0], b=x[:, 1]
        )
        model = Sequential([Dense(3), Dense(1)], input_width=2, seed=0)
        env = BenchEnvironment(
            database=db,
            model=model,
            fact_table="f",
            id_column="id",
            input_columns=["a", "b"],
            keep_predictions=True,
        )
        for name in ("ModelJoin_CPU", "TF_CPU", "UDF", "ML-To-SQL"):
            variant = make_variant(name)
            variant.prepare(env)
            measurement = variant.run(env)
            assert measurement.seconds > 0
            assert measurement.rows == 100
            np.testing.assert_allclose(
                measurement.predictions, model.predict(x), atol=1e-4
            )


class TestSweeps:
    def test_dense_sweep_shape(self):
        points = run_dense_sweep(TINY)
        assert len(points) == len(TINY.variants)
        assert all(point.experiment == "fig8" for point in points)
        assert all(not point.skipped for point in points)
        assert all(point.seconds > 0 for point in points)

    def test_lstm_sweep_shape(self):
        points = run_lstm_sweep(TINY)
        assert len(points) == len(TINY.variants)
        assert all(point.experiment == "fig9" for point in points)

    def test_mltosql_work_cap_skips(self):
        config = BenchConfig(
            preset="tiny",
            fact_rows=(200,),
            dense_grid=((64, 4),),
            variants=("ML-To-SQL",),
            mltosql_work_cap=1000,
            verify_predictions=False,
        )
        points = run_dense_sweep(config)
        assert points[0].skipped
        assert "work cap" in points[0].note

    def test_memory_table(self):
        config = BenchConfig(
            preset="tiny",
            fact_rows=(200,),
            table3_rows=300,
            mltosql_work_cap=3_000_000,
            verify_predictions=False,
        )
        points = measure_memory_table(config)
        # 4 models x 4 variants
        assert len(points) == 16
        measured = [point for point in points if not point.skipped]
        assert all(
            point.peak_memory_bytes > 0 for point in measured
        )


class TestReporting:
    def _points(self):
        return [
            SweepPoint("fig8", "A", 100, 8, 2, 0.5),
            SweepPoint("fig8", "B", 100, 8, 2, 0.1),
            SweepPoint("fig8", "A", 100, 64, 2, 5.0),
            SweepPoint(
                "fig8", "B", 100, 64, 2, None, skipped=True, note="cap"
            ),
        ]

    def test_format_helpers(self):
        assert format_seconds(None) == "--"
        assert format_seconds(0.0000005) == "0us"
        assert format_seconds(0.5) == "500.0ms"
        assert format_seconds(2.0) == "2.00s"
        assert format_bytes(None) == "--"
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 << 20) == "3.0 MB"
        assert format_bytes(5 << 30) == "5.00 GB"

    def test_runtime_series_renders_all_cells(self):
        text = format_runtime_series(self._points(), "Figure 8 test")
        assert "width=8" in text and "width=64" in text
        assert "skip" in text
        assert "500.0ms" in text

    def test_qualitative_table_classifies(self):
        memory = [
            SweepPoint(
                "table3", "A", 100, 8, 2, 0.1, peak_memory_bytes=1000
            ),
            SweepPoint(
                "table3", "B", 100, 8, 2, 0.1, peak_memory_bytes=100_000
            ),
        ]
        text = format_qualitative_table(self._points(), memory)
        lines = text.splitlines()
        small_row = next(
            line for line in lines if "Small Models" in line
        )
        # B is 5x faster than A on the small model -> A Medium/Bad
        assert "Good" in small_row
        large_row = next(
            line for line in lines if "Large Models" in line
        )
        assert "Bad" in large_row  # B skipped the large cell

    def test_csv_dump(self):
        csv = points_to_csv(self._points())
        lines = csv.splitlines()
        assert lines[0].startswith("experiment,variant")
        assert lines[0].endswith(",counters,metrics")
        assert len(lines) == 5
        assert "True" in lines[-1]  # the skipped point

    def test_csv_includes_counters(self):
        point = SweepPoint(
            "fig8",
            "ModelJoin_CPU",
            100,
            8,
            2,
            0.1,
            extra={"counters": {"morsels": 4, "model-cache-hits": 1}},
        )
        csv = points_to_csv([point])
        assert '"model-cache-hits=1;morsels=4"' in csv

    def test_counter_summary_aggregates(self):
        points = [
            SweepPoint(
                "fig8",
                "ModelJoin_CPU",
                100,
                8,
                2,
                0.1,
                extra={
                    "counters": {
                        "model-cache-misses": 1,
                        "morsels": 4,
                        "buffer-bytes-reused": 1 << 20,
                    }
                },
            ),
            SweepPoint(
                "fig8",
                "ModelJoin_CPU",
                100,
                16,
                2,
                0.1,
                extra={"counters": {"model-cache-hits": 1, "morsels": 4}},
            ),
        ]
        text = format_counter_summary(points)
        assert "model-cache-hits" in text
        assert "morsels" in text
        assert "8" in text  # morsels summed across points
        assert "1.0 MB" in text  # bytes rendered human-readable

    def test_counter_summary_empty_without_counters(self):
        assert format_counter_summary(self._points()) == ""
