"""The repro.bench CLI and the lane-merging qualitative reporting."""

import pytest

from repro.bench.harness import SweepPoint
from repro.bench.reporting import (
    _merge_lanes,
    format_qualitative_table,
)


class TestMergeLanes:
    def _point(self, variant, seconds, skipped=False, width=8):
        return SweepPoint(
            "fig8", variant, 1000, width, 2, seconds, skipped=skipped
        )

    def test_cpu_gpu_collapse_to_best(self):
        merged = _merge_lanes(
            [
                self._point("ModelJoin_CPU", 2.0),
                self._point("ModelJoin_GPU", 0.5),
            ]
        )
        assert len(merged) == 1
        assert merged[0].variant == "ModelJoin"
        assert merged[0].seconds == 0.5

    def test_skip_beaten_by_measurement(self):
        merged = _merge_lanes(
            [
                self._point("TF_CAPI_CPU", None, skipped=True),
                self._point("TF_CAPI_GPU", 1.0),
            ]
        )
        assert len(merged) == 1
        assert not merged[0].skipped

    def test_distinct_cells_kept(self):
        merged = _merge_lanes(
            [
                self._point("TF_CPU", 1.0, width=8),
                self._point("TF_GPU", 2.0, width=64),
            ]
        )
        assert len(merged) == 2

    def test_unknown_variant_passes_through(self):
        merged = _merge_lanes([self._point("Custom", 1.0)])
        assert merged[0].variant == "Custom"


class TestQualitativeTable:
    def test_paper_column_set(self):
        runtime = [
            SweepPoint("fig8", name, 100, 8, 2, seconds)
            for name, seconds in [
                ("ModelJoin_CPU", 0.01),
                ("ModelJoin_GPU", 0.008),
                ("TF_CAPI_CPU", 0.01),
                ("TF_CPU", 0.1),
                ("UDF", 0.03),
                ("ML-To-SQL", 10.0),
            ]
        ]
        table = format_qualitative_table(runtime, [])
        header = next(
            line for line in table.splitlines() if "criterion" in line
        )
        for column in (
            "ML-To-SQL",
            "ModelJoin",
            "TF(C-API)",
            "TF(Python)",
            "UDF",
        ):
            assert column in header
        assert "CPU" not in header


class TestCli:
    def test_cli_smoke_table3(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out_file = tmp_path / "report.txt"
        csv_file = tmp_path / "points.csv"
        exit_code = main(
            [
                "table3",
                "--preset",
                "smoke",
                "--out",
                str(out_file),
                "--csv",
                str(csv_file),
            ]
        )
        assert exit_code == 0
        report = out_file.read_text()
        assert "Table 3" in report
        assert "ModelJoin_CPU" in report
        csv_text = csv_file.read_text()
        assert csv_text.startswith("experiment,variant")
        printed = capsys.readouterr().out
        assert "Table 3" in printed

    def test_cli_rejects_unknown_experiment(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure42"])
