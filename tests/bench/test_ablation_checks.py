"""Correctness companions to the ablation benchmarks.

These checks accompany benchmarks/bench_ablation_*.py: they verify the
*semantics* of each ablated mechanism (the benchmarks measure only its
cost), and they run as part of the plain test suite.
"""

import numpy as np
import pytest

import repro
from repro.core.cost.model import flops_per_tuple_of_model
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.db.operators import ExecutionContext, TableScan
from repro.db.planner import Planner, PlannerOptions
from repro.db.sql.parser import parse_statement
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model


@pytest.mark.parametrize("pruning", [True, False])
def test_pruning_skips_model_blocks(pruning):
    """Block pruning actually skips model-table blocks (and only when
    enabled) in the generated ML-To-SQL query."""
    db = repro.connect()
    load_iris_table(db, 100)
    model = make_dense_model(64, 4, seed=1)  # several storage blocks
    runner = MlToSqlModelJoin(db, model)
    sql = runner.generator(
        "iris", "id", list(FEATURE_COLUMNS)
    ).inference_query()
    planner = Planner(
        db.catalog, options=PlannerOptions(use_block_pruning=pruning)
    )
    context = ExecutionContext()
    plan = planner.plan_select(parse_statement(sql), context)
    list(plan.batches())

    def scans(node):
        found = []
        if isinstance(node, TableScan):
            found.append(node)
        for child in node.children():
            found.extend(scans(child))
        return found

    model_scans = [
        scan for scan in scans(plan) if scan.table.name == "model_table"
    ]
    pruned = sum(scan.blocks_pruned for scan in model_scans)
    if pruning:
        assert pruned > 0
    else:
        assert pruned == 0


def test_aggregation_strategies_agree():
    """Hash and order-based aggregation return the same result set."""
    query = "SELECT id, SUM(v * v) AS s, COUNT(*) AS c FROM t GROUP BY id"
    results = []
    for use_ordered in (True, False):
        db = repro.Database(
            planner_options=PlannerOptions(
                use_ordered_aggregation=use_ordered
            )
        )
        db.execute("CREATE TABLE t (id INTEGER, v FLOAT) SORTED BY (id)")
        ids = np.repeat(np.arange(500, dtype=np.int64), 4)
        db.table("t").append_columns(
            id=ids, v=np.arange(2000, dtype=np.float32)
        )
        expected = (
            "OrderedAggregate" if use_ordered else "HashAggregate"
        )
        assert expected in db.explain(query)
        results.append(sorted(db.execute(query).rows))
    assert results[0] == results[1]


def test_flops_scale_linearly_in_depth():
    """The §7 claim behind the cost model: adding a hidden layer adds a
    constant FLOP increment."""
    base = flops_per_tuple_of_model(make_dense_model(64, 2))
    deeper = flops_per_tuple_of_model(make_dense_model(64, 4))
    deepest = flops_per_tuple_of_model(make_dense_model(64, 8))
    first_step = deeper - base
    second_step = (deepest - deeper) / 2
    assert first_step == second_step


def test_bias_replication_equivalence():
    """The ModelJoin bias-matrix optimization does not change results."""
    from repro.core.modeljoin.runner import NativeModelJoin
    from repro.core.registry import publish_model

    db = repro.connect()
    load_iris_table(db, 500)
    model = make_dense_model(8, 2, seed=5)
    publish_model(db, "b", model)
    with_replication = NativeModelJoin(db, "b", replicate_bias=True)
    without_replication = NativeModelJoin(db, "b", replicate_bias=False)
    columns = list(FEATURE_COLUMNS)
    np.testing.assert_array_equal(
        with_replication.predict("iris", "id", columns),
        without_replication.predict("iris", "id", columns),
    )


@pytest.mark.parametrize("vector_size", [64, 1024, 4096])
def test_vector_size_does_not_change_results(vector_size):
    from repro.core.modeljoin.runner import NativeModelJoin
    from repro.core.registry import publish_model

    db = repro.connect()
    db.vector_size = vector_size
    load_iris_table(db, 700)
    model = make_dense_model(8, 2, seed=6)
    publish_model(db, "v", model)
    runner = NativeModelJoin(db, "v")
    predictions = runner.predict("iris", "id", list(FEATURE_COLUMNS))
    dataset_features = np.column_stack(
        [
            db.execute(f"SELECT id, {c} FROM iris ORDER BY id").column(c)
            for c in FEATURE_COLUMNS
        ]
    )
    np.testing.assert_allclose(
        predictions, model.predict(dataset_features), atol=1e-5
    )
