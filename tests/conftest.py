"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.db.engine import Database
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


@pytest.fixture
def db() -> Database:
    """A plain engine instance (no ModelJoin factory)."""
    return Database()


@pytest.fixture
def cdb() -> Database:
    """A fully attached database (MODEL JOIN available)."""
    return repro.connect()


@pytest.fixture
def parallel_db() -> Database:
    return repro.connect(parallelism=4)


@pytest.fixture
def small_dense_model() -> Sequential:
    return Sequential(
        [Dense(6, "relu"), Dense(3, "tanh"), Dense(1, "sigmoid")],
        input_width=4,
        seed=11,
    )


@pytest.fixture
def small_lstm_model() -> Sequential:
    return Sequential(
        [Lstm(5), Dense(1, "linear")], input_width=3, seed=12
    )


@pytest.fixture
def iris_db(db: Database) -> Database:
    """A database with a tiny populated iris-like table."""
    db.execute(
        "CREATE TABLE iris (id INTEGER, f0 FLOAT, f1 FLOAT, "
        "f2 FLOAT, f3 FLOAT)"
    )
    rng = np.random.default_rng(0)
    n = 100
    features = rng.normal(size=(n, 4)).astype(np.float32)
    db.table("iris").append_columns(
        id=np.arange(n),
        f0=features[:, 0],
        f1=features[:, 1],
        f2=features[:, 2],
        f3=features[:, 3],
    )
    return db


def make_inputs(rows: int, width: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, width)).astype(np.float32)
