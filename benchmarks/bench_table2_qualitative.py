"""Table 2 — the qualitative comparison, derived from measurements.

The paper's Table 2 rates each approach Good/Medium/Bad on five
criteria.  Performance and memory cells are *derived* here from a tiny
live sweep (the classifier in :mod:`repro.bench.reporting`); the
portability/generalizability rows are the approaches' inherent
properties.  Asserts the paper's headline orderings hold on this
substrate; the rendered table lands in ``extra_info``.
"""

from repro.bench.harness import BenchConfig, measure_memory_table, run_dense_sweep
from repro.bench.reporting import format_qualitative_table

_CONFIG = BenchConfig(
    preset="table2-bench",
    fact_rows=(1_000,),
    dense_grid=((8, 2), (64, 2)),
    lstm_widths=(),
    variants=(
        "ModelJoin_CPU",
        "TF_CAPI_CPU",
        "TF_CPU",
        "UDF",
        "ML-To-SQL",
    ),
    mltosql_work_cap=6_000_000,
    table3_rows=1_000,
    verify_predictions=False,
)


def _derive():
    runtime_points = run_dense_sweep(_CONFIG)
    memory_points = measure_memory_table(_CONFIG)
    table = format_qualitative_table(runtime_points, memory_points)
    return runtime_points, memory_points, table


def test_table2_qualitative(benchmark):
    runtime_points, memory_points, table = benchmark.pedantic(
        _derive, rounds=1, iterations=1
    )
    benchmark.extra_info["table2"] = table

    def cell(criterion: str, variant: str) -> str:
        row = next(
            line
            for line in table.splitlines()
            if line.startswith(criterion)
        )
        header = next(
            line for line in table.splitlines() if "criterion" in line
        )
        names = header.split()[1:]
        values = row[28:].split()
        return dict(zip(names, values))[variant]

    # The paper's headline qualitative findings:
    # ML-To-SQL: portable but does not scale to large models.
    assert cell("Portability", "ML-To-SQL") == "Good"
    assert cell("Performance (Large Models)", "ML-To-SQL") == "Bad"
    # The native integrations perform well but are not portable.
    assert cell("Performance (Large Models)", "TF(C-API)") == "Good"
    assert cell("Portability", "TF(C-API)") == "Bad"
    assert cell("Portability", "ModelJoin") == "Bad"
    # The external baseline is generic but slow.
    assert cell("Generalizability", "TF(Python)") == "Good"
    assert cell("Performance (Small Models)", "TF(Python)") == "Bad"
    # Only the reimplemented layer types limit the native approaches.
    assert cell("Generalizability", "ModelJoin") == "Bad"
