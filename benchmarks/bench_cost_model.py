"""Cost-model validation (paper Section 7).

"our evaluation showed that costs increase linearly with model size" —
measures the native operator across model sizes, fits the
:class:`~repro.core.cost.model.InferenceCostModel`, and asserts the
linear fit predicts a held-out configuration within a factor of ~2
(Python timing noise included).
"""

import time

import numpy as np

import repro
from repro.core.cost.model import (
    InferenceCostModel,
    flops_per_tuple_of_model,
)
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model


def _measure(db, model, name, rows):
    publish_model(db, name, model, replace=True)
    runner = NativeModelJoin(db, name)
    # median of 3 to tame scheduler noise
    samples = []
    for _ in range(3):
        started = time.perf_counter()
        runner.execute("iris", list(FEATURE_COLUMNS))
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def test_cost_model_linearity(benchmark):
    db = repro.connect()
    rows = 3_000
    load_iris_table(db, rows)
    train_widths = [16, 48, 96, 160]
    observations = []
    for width in train_widths:
        model = make_dense_model(width, 4, seed=width)
        seconds = _measure(db, model, f"cm_{width}", rows)
        observations.append(
            (rows, flops_per_tuple_of_model(model), seconds)
        )
    cost_model = InferenceCostModel()
    cost_model.calibrate(observations)

    held_out = make_dense_model(128, 4, seed=99)

    def predict_and_measure():
        estimate = cost_model.estimate(held_out, rows)
        actual = _measure(db, held_out, "cm_held_out", rows)
        return estimate.predicted_seconds, actual

    predicted, actual = benchmark.pedantic(
        predict_and_measure, rounds=1, iterations=1
    )
    benchmark.extra_info["predicted_seconds"] = predicted
    benchmark.extra_info["actual_seconds"] = actual
    assert predicted > 0
    assert 0.4 < predicted / actual < 2.5
