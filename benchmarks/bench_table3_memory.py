"""Table 3 — peak memory for model inference.

Reproduces the paper's Table 3 columns (ModelJoin, TF C-API,
TF Python, ML-To-SQL) for its representative models.  The benchmark
*time* is incidental; the reproduced quantity is
``extra_info["peak_memory_bytes"]`` — engine-accounted peak for the
in-DBMS variants, traced client allocation peak for TF(Python).

Expected shape (paper §6.2.2): ModelJoin lowest and nearly flat across
model sizes; TF C-API similar with a higher fixed part; TF(Python) and
ML-To-SQL orders of magnitude above (client row materialization /
generic-operator intermediates).
"""

import pytest

from benchmarks.conftest import (
    dense_environment,
    lstm_environment,
    run_variant_benchmark,
)

VARIANTS = ("ModelJoin_CPU", "TF_CAPI_CPU", "TF_CPU")


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("width", [32, 128, 512])
def test_table3_dense_memory(benchmark, variant, width):
    env = dense_environment(width, 4)
    measurement = run_variant_benchmark(benchmark, variant, env)
    assert measurement.peak_memory_bytes > 0


@pytest.mark.parametrize("variant", VARIANTS)
def test_table3_lstm_memory(benchmark, variant):
    env = lstm_environment(128)
    measurement = run_variant_benchmark(benchmark, variant, env)
    assert measurement.peak_memory_bytes > 0


def test_table3_ml_to_sql_memory(benchmark):
    """ML-To-SQL on Dense(32,4): the cell that is feasible in Python;
    its peak dwarfs the native operator's (generic operators buffer
    the full per-layer intermediates, paper §6.2.2)."""
    env = dense_environment(32, 4)
    measurement = run_variant_benchmark(benchmark, "ML-To-SQL", env)
    assert measurement.peak_memory_bytes > 10 * (1 << 20)
