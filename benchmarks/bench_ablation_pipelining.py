"""Ablation: §4.4 pipelined execution of the generated queries.

"exploiting vectorized execution and pipelining ... the aggregation
does not need the full dataset, leading to a low memory footprint and
pipelined execution."

Runs the same ML-To-SQL inference with the generic hash aggregation
(pipeline breaker, input-sized buffers) and with the segmented
partially-ordered aggregation (per-ID buffers).  The reproduced claim
is the memory footprint in ``extra_info``; runtime is reported too.
"""

import numpy as np
import pytest

import repro
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.db.planner import PlannerOptions
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

ROWS = 2_000


def _run(benchmark, segmented: bool) -> int:
    db = repro.Database(
        planner_options=PlannerOptions(
            use_segmented_aggregation=segmented
        )
    )
    repro.attach(db)
    load_iris_table(db, ROWS)
    model = make_dense_model(16, 2, seed=3)
    runner = MlToSqlModelJoin(db, model)
    columns = list(FEATURE_COLUMNS)
    predictions = benchmark.pedantic(
        lambda: runner.predict("iris", "id", columns),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    peak = db.last_profile.peak_memory_bytes
    features = np.column_stack(
        [
            db.execute(f"SELECT id, {c} FROM iris ORDER BY id").column(c)
            for c in columns
        ]
    )
    np.testing.assert_allclose(
        predictions, model.predict(features), atol=1e-4
    )
    benchmark.extra_info["peak_memory_bytes"] = peak
    benchmark.extra_info["segmented"] = segmented
    return peak


@pytest.mark.parametrize("segmented", [False, True])
def test_mltosql_pipelining(benchmark, segmented):
    peak = _run(benchmark, segmented)
    assert peak > 0
