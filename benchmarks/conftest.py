"""Shared benchmark fixtures and helpers.

Benchmark cells are scaled for pytest-benchmark's repeated execution
(seconds per cell, not the full sweep of ``python -m repro.bench``);
the grid identity — which widths/depths/variants appear — follows the
paper.  Set ``REPRO_BENCH_ROWS`` to change the fact-table size.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.bench.variants import BenchEnvironment, make_variant
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model, make_lstm_model
from repro.workloads.timeseries import load_windowed_series_table

#: default fact-table size for benchmark cells
BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "2000"))


def dense_environment(
    width: int,
    depth: int,
    rows: int = BENCH_ROWS,
    parallelism: int = 1,
    parallel: bool = False,
) -> BenchEnvironment:
    database = repro.connect(parallelism=parallelism)
    load_iris_table(
        database,
        rows,
        num_partitions=parallelism if parallel else 1,
    )
    model = make_dense_model(width, depth, seed=width + depth)
    return BenchEnvironment(
        database=database,
        model=model,
        fact_table="iris",
        id_column="id",
        input_columns=list(FEATURE_COLUMNS),
        parallel=parallel,
    )


def lstm_environment(
    width: int,
    rows: int = BENCH_ROWS,
    time_steps: int = 3,
    parallelism: int = 1,
    parallel: bool = False,
) -> BenchEnvironment:
    database = repro.connect(parallelism=parallelism)
    load_windowed_series_table(
        database,
        rows,
        time_steps=time_steps,
        num_partitions=parallelism if parallel else 1,
    )
    model = make_lstm_model(width, time_steps=time_steps, seed=width)
    return BenchEnvironment(
        database=database,
        model=model,
        fact_table="sinus_windows",
        id_column="id",
        input_columns=[f"x{step}" for step in range(1, time_steps + 1)],
        parallel=parallel,
    )


def run_variant_benchmark(benchmark, variant_name: str, env, **variant_kwargs):
    """Prepare once, then benchmark the variant's run()."""
    variant = make_variant(variant_name, **variant_kwargs)
    variant.prepare(env)
    measurement = benchmark.pedantic(
        lambda: variant.run(env), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["variant"] = variant_name
    benchmark.extra_info["rows"] = env.database.table(
        env.fact_table
    ).row_count
    benchmark.extra_info["effective_seconds"] = measurement.seconds
    benchmark.extra_info["peak_memory_bytes"] = (
        measurement.peak_memory_bytes
    )
    return measurement


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
