"""Ablation: order-based vs hash aggregation (paper Section 4.4).

"Defining a sort order on both the model table and the fact table will
lead to a fully pipelined execution ...  the aggregation does not need
the full dataset, leading to a low memory footprint."

Benchmarks the same grouped query with both strategies and asserts the
memory claim: the order-based aggregate buffers nothing.
"""

import numpy as np

import repro
from repro.db.planner import PlannerOptions

ROWS = 60_000
QUERY = "SELECT id, SUM(v * v) AS s, COUNT(*) AS c FROM t GROUP BY id"


def _database(use_ordered: bool) -> repro.Database:
    db = repro.Database(
        planner_options=PlannerOptions(use_ordered_aggregation=use_ordered)
    )
    db.execute("CREATE TABLE t (id INTEGER, v FLOAT) SORTED BY (id)")
    ids = np.repeat(np.arange(ROWS // 4, dtype=np.int64), 4)
    db.table("t").append_columns(
        id=ids, v=np.arange(ROWS, dtype=np.float32)
    )
    return db


def test_aggregation_ordered(benchmark):
    db = _database(use_ordered=True)
    assert "OrderedAggregate" in db.explain(QUERY)
    result = benchmark.pedantic(
        lambda: db.execute(QUERY), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.row_count == ROWS // 4
    # The streaming aggregate holds no buffered input at all.
    assert db.last_profile.peak_memory_bytes == 0
    benchmark.extra_info["peak_memory_bytes"] = (
        db.last_profile.peak_memory_bytes
    )


def test_aggregation_hash(benchmark):
    db = _database(use_ordered=False)
    assert "HashAggregate" in db.explain(QUERY)
    result = benchmark.pedantic(
        lambda: db.execute(QUERY), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.row_count == ROWS // 4
    # The hash aggregate buffers the full input (pipeline breaker).
    assert db.last_profile.peak_memory_bytes > ROWS * 8
    benchmark.extra_info["peak_memory_bytes"] = (
        db.last_profile.peak_memory_bytes
    )
