"""Ablations of the native ModelJoin's design choices (Section 5.4).

- vector size: the inference is "vectorized per set of column vectors";
  tiny vectors pay per-call overhead, huge ones lose cache residency
  (here: NumPy call amortization),
- bias-matrix replication: one big copy + sgemm-accumulate vs repeated
  fine-grained bias additions,
- parallelism: partition-parallel build + inference scaling,
- UDF calling convention: vectorized (once per vector, the CIDR'22
  optimization) vs tuple-at-a-time.
"""

import numpy as np
import pytest

import repro
from repro.core.modeljoin.runner import NativeModelJoin
from repro.core.registry import publish_model
from repro.core.udf_integration.inference_udf import UdfModelJoin
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

ROWS = 4_000


def _prepare(vector_size=1024, parallelism=1, partitions=1):
    db = repro.connect(parallelism=parallelism)
    db.vector_size = vector_size
    load_iris_table(db, ROWS, num_partitions=partitions)
    model = make_dense_model(64, 4, seed=2)
    publish_model(
        db, "abl", model, model_table_partitions=partitions
    )
    return db, model


@pytest.mark.parametrize("vector_size", [128, 1024, 8192])
def test_operator_vector_size(benchmark, vector_size):
    db, _ = _prepare(vector_size=vector_size)
    runner = NativeModelJoin(db, "abl")
    benchmark.pedantic(
        lambda: runner.execute("iris", list(FEATURE_COLUMNS)),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["vector_size"] = vector_size


@pytest.mark.parametrize("replicate", [True, False])
def test_operator_bias_replication(benchmark, replicate):
    db, model = _prepare()
    runner = NativeModelJoin(db, "abl", replicate_bias=replicate)
    predictions = benchmark.pedantic(
        lambda: runner.predict("iris", "id", list(FEATURE_COLUMNS)),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    # Correctness unaffected by the optimization.
    features = np.column_stack(
        [
            db.execute(f"SELECT id, {c} FROM iris ORDER BY id").column(c)
            for c in FEATURE_COLUMNS
        ]
    )
    np.testing.assert_allclose(
        predictions, model.predict(features), atol=1e-5
    )
    benchmark.extra_info["replicate_bias"] = replicate


@pytest.mark.parametrize("parallelism", [1, 4])
def test_operator_parallelism(benchmark, parallelism):
    db, _ = _prepare(parallelism=parallelism, partitions=parallelism)
    runner = NativeModelJoin(db, "abl")
    benchmark.pedantic(
        lambda: runner.execute(
            "iris", list(FEATURE_COLUMNS), parallel=parallelism > 1
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["parallelism"] = parallelism


@pytest.mark.parametrize("vectorized", [True, False])
def test_udf_calling_convention(benchmark, vectorized):
    """Per-vector vs per-tuple UDF calls (the [21] optimization)."""
    db, _ = _prepare()
    model = make_dense_model(8, 2, seed=4)
    runner = UdfModelJoin(
        db,
        model,
        name=f"udf_{'vec' if vectorized else 'tup'}",
        vectorized=vectorized,
    )
    rows = 1_000 if vectorized else 300  # per-tuple is brutally slow
    db.execute("DROP TABLE IF EXISTS small")
    db.execute(
        "CREATE TABLE small (id INTEGER, sepal_length FLOAT, "
        "sepal_width FLOAT, petal_length FLOAT, petal_width FLOAT)"
    )
    db.execute(
        "INSERT INTO small SELECT id, sepal_length, sepal_width, "
        f"petal_length, petal_width FROM iris WHERE id < {rows}"
    )
    benchmark.pedantic(
        lambda: runner.execute("small", "id", list(FEATURE_COLUMNS)),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["vectorized"] = vectorized
    benchmark.extra_info["rows"] = rows
    calls = sum(udf.statistics.calls for udf in runner.udfs)
    benchmark.extra_info["udf_calls"] = calls


@pytest.mark.parametrize("marshal", [True, False])
def test_udf_marshalling_boundary(benchmark, marshal):
    """The serialized engine/interpreter boundary on vs off."""
    db, model = _prepare()
    runner = UdfModelJoin(
        db,
        model,
        name=f"udfm_{int(marshal)}",
        marshal=marshal,
    )
    benchmark.pedantic(
        lambda: runner.execute("iris", "id", list(FEATURE_COLUMNS)),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["marshal"] = marshal
