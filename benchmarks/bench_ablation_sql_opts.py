"""Ablation: the ML-To-SQL optimizations of paper Section 4.4.

Compares the generated-query variants:

- *classic* (Layer, Node) pair joins + Layer filter  vs
- *optimized* unique node ids + node-range predicates (prunable), and
- native activation functions vs portable arithmetic/CASE SQL,
- block pruning on vs off at the engine level.
"""

import numpy as np
import pytest

import repro
from repro.core.ml_to_sql.generator import MlToSqlModelJoin
from repro.core.ml_to_sql.representation import MlToSqlOptions
from repro.db.planner import PlannerOptions
from repro.workloads.iris import FEATURE_COLUMNS, load_iris_table
from repro.workloads.models import make_dense_model

ROWS = 1_000


def _run(benchmark, options: MlToSqlOptions, planner_options=None):
    db = repro.Database(planner_options=planner_options or PlannerOptions())
    repro.attach(db)
    load_iris_table(db, ROWS)
    model = make_dense_model(16, 2, seed=3)
    runner = MlToSqlModelJoin(db, model, options=options)
    columns = list(FEATURE_COLUMNS)

    def run():
        return runner.predict("iris", "id", columns)

    predictions = benchmark.pedantic(
        run, rounds=3, iterations=1, warmup_rounds=1
    )
    reference = None
    features = np.column_stack(
        [
            db.execute("SELECT id, " + c + " FROM iris ORDER BY id").column(c)
            for c in columns
        ]
    )
    reference = model.predict(features)
    np.testing.assert_allclose(predictions, reference, atol=1e-4)


def test_sql_opts_optimized_node_ids(benchmark):
    _run(benchmark, MlToSqlOptions(optimized_node_ids=True))


def test_sql_opts_classic_pairs(benchmark):
    _run(benchmark, MlToSqlOptions(optimized_node_ids=False))


def test_sql_opts_native_activations(benchmark):
    _run(benchmark, MlToSqlOptions(native_activation_functions=True))


def test_sql_opts_portable_activations(benchmark):
    _run(benchmark, MlToSqlOptions(native_activation_functions=False))


def test_sql_opts_no_block_pruning(benchmark):
    _run(
        benchmark,
        MlToSqlOptions(),
        planner_options=PlannerOptions(use_block_pruning=False),
    )
