"""Figure 8 — runtime for dense-layer networks, all eight variants.

Regenerates the series of the paper's Figure 8 at benchmark scale: the
same variant legend, the paper's widths, two depths, one fact size per
run (``REPRO_BENCH_ROWS``).  ML-To-SQL is restricted to the small
model, exactly where the paper's own evaluation still shows it as
viable — its quadratic intermediate growth (Section 6.2.1) makes the
large cells infeasible on a Python substrate (see EXPERIMENTS.md).

The full tuple-count sweep is ``python -m repro.bench fig8``.
"""

import pytest

from benchmarks.conftest import dense_environment, run_variant_benchmark

FAST_VARIANTS = (
    "ModelJoin_CPU",
    "ModelJoin_GPU",
    "TF_CAPI_CPU",
    "TF_CAPI_GPU",
    "TF_CPU",
    "TF_GPU",
    "UDF",
)


@pytest.mark.parametrize("variant", FAST_VARIANTS)
@pytest.mark.parametrize("width,depth", [(32, 2), (128, 4)])
def test_fig8_dense(benchmark, variant, width, depth):
    env = dense_environment(width, depth)
    measurement = run_variant_benchmark(benchmark, variant, env)
    assert measurement.rows == env.database.table("iris").row_count


@pytest.mark.parametrize("variant", ("ModelJoin_CPU", "TF_CAPI_CPU"))
def test_fig8_dense_wide(benchmark, variant):
    """The paper's largest width for the native integrations."""
    env = dense_environment(512, 4)
    run_variant_benchmark(benchmark, variant, env)


def test_fig8_dense_ml_to_sql(benchmark):
    """ML-To-SQL on the small dense model (its viable regime)."""
    env = dense_environment(32, 2)
    measurement = run_variant_benchmark(benchmark, "ML-To-SQL", env)
    assert measurement.seconds > 0
