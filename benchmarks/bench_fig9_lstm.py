"""Figure 9 — runtime for LSTM networks, all eight variants.

The paper's LSTM experiment: a single LSTM layer (widths from the
paper's grid, scaled) over 3-step sinus windows, followed by a one-
neuron output layer.  ML-To-SQL appears on the small width — the
regime where the paper itself reports it as significantly more viable
than in the dense experiment (only one layer, smaller intermediates).

The full tuple-count sweep is ``python -m repro.bench fig9``.
"""

import pytest

from benchmarks.conftest import lstm_environment, run_variant_benchmark

FAST_VARIANTS = (
    "ModelJoin_CPU",
    "ModelJoin_GPU",
    "TF_CAPI_CPU",
    "TF_CAPI_GPU",
    "TF_CPU",
    "TF_GPU",
    "UDF",
)


@pytest.mark.parametrize("variant", FAST_VARIANTS)
@pytest.mark.parametrize("width", [32, 128])
def test_fig9_lstm(benchmark, variant, width):
    env = lstm_environment(width)
    measurement = run_variant_benchmark(benchmark, variant, env)
    assert measurement.rows == env.database.table(
        "sinus_windows"
    ).row_count


@pytest.mark.parametrize("variant", ("ModelJoin_CPU", "TF_CAPI_CPU"))
def test_fig9_lstm_wide(benchmark, variant):
    """The paper's largest LSTM width for the native integrations."""
    env = lstm_environment(512)
    run_variant_benchmark(benchmark, variant, env)


def test_fig9_lstm_ml_to_sql(benchmark):
    """ML-To-SQL on the small LSTM (one layer => viable, §6.2.1)."""
    env = lstm_environment(16)
    measurement = run_variant_benchmark(benchmark, "ML-To-SQL", env)
    assert measurement.seconds > 0
