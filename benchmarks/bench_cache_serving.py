"""Serving — warm ModelJoin queries against the model build cache.

A serving workload repeats the same scoring query against one engine;
the engine-lifetime model cache makes every query after the first skip
the build phase entirely.  Cells benchmark the *warm* latency (the
cold run happens once, outside the timed rounds) and assert the
cache's observable contract: exactly one cache hit per warm query, a
near-zero build phase, and bit-exact predictions.

The sweep with the cold/warm comparison and the JSON evidence is
``python -m repro.bench serving --check-regression``.
"""

import numpy as np
import pytest

from benchmarks.conftest import dense_environment, lstm_environment
from repro.bench.variants import make_variant


def _cold_then_benchmark_warm(benchmark, env):
    variant = make_variant("ModelJoin_CPU")
    variant.prepare(env)
    env.keep_predictions = True
    cold = variant.run(env)  # builds the model, populates the cache
    warm = benchmark.pedantic(
        lambda: variant.run(env), rounds=3, iterations=1, warmup_rounds=1
    )
    cold_build = cold.extra["phases"].get("modeljoin-build", 0.0)
    warm_build = warm.extra["phases"].get("modeljoin-build", 0.0)
    benchmark.extra_info["cold_build_seconds"] = cold_build
    benchmark.extra_info["warm_build_seconds"] = warm_build
    benchmark.extra_info["warm_counters"] = warm.extra["counters"]
    assert warm.extra["counters"].get("model-cache-hits") == 1
    assert warm_build < cold_build
    assert np.array_equal(warm.predictions, cold.predictions)
    return cold, warm


@pytest.mark.parametrize("width,depth", [(32, 2), (128, 4)])
def test_cache_serving_dense_warm(benchmark, width, depth):
    env = dense_environment(width, depth)
    _cold_then_benchmark_warm(benchmark, env)


def test_cache_serving_lstm_warm(benchmark):
    env = lstm_environment(32)
    _cold_then_benchmark_warm(benchmark, env)


def test_cache_serving_parallel_warm(benchmark):
    """Warm serving on the morsel-driven parallel path."""
    env = dense_environment(64, 4, parallelism=4, parallel=True)
    cold, warm = _cold_then_benchmark_warm(benchmark, env)
    assert warm.extra["counters"].get("morsels", 0) > 0
